//! The metric registry: named counters, accumulators, gauges, and
//! fixed-bucket histograms with snapshot / diff / reset.
//!
//! Names are dot-separated hierarchies, lowest-frequency component first:
//! `<layer>.<unit>.<event>` — e.g. `crossbar.cam.searches`,
//! `device.adc.conversions`, `star.exp.lut_hits`,
//! `pipeline.softmax.stall_ns`. The registry itself imposes no schema;
//! the convention keeps the pretty renderer's grouping meaningful.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Default histogram bucket upper bounds (decade-spaced). Values above the
/// last bound land in the overflow bucket.
///
/// Decade spacing gives a *coarse* quantile guarantee (relative error up
/// to 9; see [`HistogramSnapshot::relative_error_bound`]). Metrics that
/// need tight tail estimates should create their histograms with
/// [`geometric_bounds`] instead.
pub const DEFAULT_BUCKET_BOUNDS: [f64; 10] = [1e-3, 1e-2, 1e-1, 1.0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6];

/// DDSketch-style geometric bucket bounds with a guaranteed quantile
/// relative error.
///
/// Returns ascending upper bounds `min, min·γ, min·γ², …` with
/// `γ = 1 + rel_err`, extended until the last bound reaches `max`. A
/// histogram created with these bounds answers
/// [`HistogramSnapshot::quantile`] with relative error at most `rel_err`
/// for any sample set contained in `(min, last_bound]` — the bound proven
/// in [`HistogramSnapshot::relative_error_bound`]. This is the bucket
/// layout of DDSketch (Masson, Rim & Lee, *DDSketch: a fast and
/// fully-mergeable quantile sketch with relative-error guarantees*,
/// VLDB 2019), which uses the same geometric bucketing to bound relative
/// error by a constant independent of the data.
///
/// The bucket count is `⌈log_γ(max/min)⌉ + 1` — e.g. `rel_err = 0.25`
/// over `(1, 1e6]` needs 63 buckets.
///
/// # Panics
///
/// Panics unless `0 < rel_err`, `0 < min < max`, and all are finite.
pub fn geometric_bounds(rel_err: f64, min: f64, max: f64) -> Vec<f64> {
    assert!(rel_err.is_finite() && rel_err > 0.0, "relative error must be positive");
    assert!(min.is_finite() && max.is_finite() && 0.0 < min && min < max, "need 0 < min < max");
    let gamma = 1.0 + rel_err;
    let mut bounds = vec![min];
    let mut b = min;
    while b < max {
        b *= gamma;
        bounds.push(b);
    }
    bounds
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Histogram {
    /// Upper bounds of the finite buckets (ascending).
    bounds: Vec<f64>,
    /// One count per finite bucket plus a trailing overflow bucket:
    /// `counts.len() == bounds.len() + 1`.
    counts: Vec<u64>,
    /// Sum of all observed values.
    sum: f64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram { bounds: bounds.to_vec(), counts: vec![0; bounds.len() + 1], sum: 0.0 }
    }

    fn observe(&mut self, value: f64) {
        let idx = self.bounds.iter().position(|&b| value <= b).unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
    }

    fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Immutable view of a histogram at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Upper bounds of the finite buckets.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (`bounds.len() + 1` entries; last is overflow).
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub total: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Mean observed value, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`) from the bucket counts, or
    /// `None` when the histogram is empty.
    ///
    /// Within the bucket holding the target rank the value is linearly
    /// interpolated between the bucket's edges (the first finite bucket's
    /// lower edge is taken as 0, the Prometheus convention for
    /// non-negative observations). A rank that lands in the overflow
    /// bucket clamps to the last finite bound — the histogram cannot know
    /// how far above it the tail reaches, so heavy-tailed inputs report a
    /// *lower bound* on the true quantile. Callers that need exact tail
    /// quantiles (e.g. the serving SLO tracker) should keep the raw
    /// samples.
    ///
    /// # Accuracy guarantee
    ///
    /// The estimate carries a **documented relative-error bound** whenever
    /// every observation lies strictly inside the finite bucket range
    /// `(bounds[0], bounds[last]]`:
    ///
    /// > `|est − exact| / exact ≤ max_i (bounds[i] − bounds[i−1]) / bounds[i−1]`
    ///
    /// where `exact` is the order statistic of rank `max(1, ⌈q·n⌉)` (the
    /// same rank convention this method targets). *Proof:* the cumulative
    /// bucket counts put the rank-`r` sample in a unique bucket
    /// `(lo, hi]`; both the true order statistic and the interpolated
    /// estimate lie inside `[lo, hi]` of that bucket, so their difference
    /// is at most `hi − lo` while the true value is at least `lo > 0`.
    /// The bound is exposed programmatically by
    /// [`HistogramSnapshot::relative_error_bound`]; choosing
    /// [`geometric_bounds`]`(α, …)` buckets (the DDSketch layout, Masson
    /// et al., VLDB 2019) makes it a uniform `α` across the whole range,
    /// and a property test enforces it over seeded samples.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.total == 0 {
            return None;
        }
        // Target rank in 1..=total (q = 0 maps to the first observation).
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            seen += count;
            if seen >= rank {
                if i >= self.bounds.len() {
                    // Overflow bucket: clamp to the last finite bound.
                    return Some(self.bounds.last().copied().unwrap_or(f64::INFINITY));
                }
                let hi = self.bounds[i];
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                // Position of the rank inside this bucket, interpolated.
                let into = (rank - (seen - count)) as f64 / count as f64;
                return Some(lo + (hi - lo) * into);
            }
        }
        unreachable!("total > 0 implies some bucket holds the rank");
    }

    /// The `(p50, p95, p99)` latency-style summary, or `None` when empty.
    pub fn quantile_summary(&self) -> Option<(f64, f64, f64)> {
        Some((self.quantile(0.50)?, self.quantile(0.95)?, self.quantile(0.99)?))
    }

    /// The guaranteed relative-error bound of [`HistogramSnapshot::quantile`]
    /// for sample sets contained in `(bounds[0], bounds[last]]`:
    /// `max_i (bounds[i] − bounds[i−1]) / bounds[i−1]` (see the proof in
    /// the `quantile` docs). Returns `None` when fewer than two finite
    /// bounds exist (no interior bucket, hence no finite guarantee).
    ///
    /// For [`geometric_bounds`]`(α, …)` layouts this is exactly `α` (up to
    /// floating-point rounding); for the decade-spaced
    /// [`DEFAULT_BUCKET_BOUNDS`] it is 9 — documented, but only useful for
    /// order-of-magnitude dashboards.
    pub fn relative_error_bound(&self) -> Option<f64> {
        // Need a positive lower edge for "relative" to mean anything, and
        // at least one interior bucket for the bound to cover.
        if self.bounds.len() < 2 || self.bounds[0] <= 0.0 {
            return None;
        }
        self.bounds.windows(2).map(|w| (w[1] - w[0]) / w[0]).max_by(f64::total_cmp)
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A registry of named metrics.
///
/// All mutation goes through `&self` (interior mutability), so a registry
/// can be shared freely — the global registry is a `&'static Registry`.
/// When disabled, every recording call is a single relaxed atomic load.
#[derive(Debug)]
pub struct Registry {
    enabled: AtomicBool,
    inner: Mutex<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A fresh, enabled registry.
    pub fn new() -> Self {
        Registry { enabled: AtomicBool::new(true), inner: Mutex::new(Inner::default()) }
    }

    /// Whether recording calls currently take effect.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enable or disable recording (snapshot/reset work regardless).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned lock only means a panic elsewhere mid-record; metric
        // state stays structurally valid, so keep going.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Add `n` to counter `name` (creating it at zero).
    pub fn count(&self, name: &str, n: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock();
        match inner.counters.get_mut(name) {
            Some(c) => *c += n,
            None => {
                inner.counters.insert(name.to_string(), n);
            }
        }
    }

    /// Add `v` to the accumulating gauge `name` (creating it at zero).
    /// Used for additive physical quantities: energy, busy time, charge.
    pub fn add(&self, name: &str, v: f64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock();
        match inner.gauges.get_mut(name) {
            Some(g) => *g += v,
            None => {
                inner.gauges.insert(name.to_string(), v);
            }
        }
    }

    /// Set gauge `name` to `v` (last-write-wins; for levels, not totals).
    pub fn set(&self, name: &str, v: f64) {
        if !self.is_enabled() {
            return;
        }
        self.lock().gauges.insert(name.to_string(), v);
    }

    /// Record `value` into histogram `name` with the default decade
    /// buckets.
    pub fn observe(&self, name: &str, value: f64) {
        self.observe_with(name, value, &DEFAULT_BUCKET_BOUNDS);
    }

    /// Record `value` into histogram `name`, creating it with `bounds` if
    /// absent. Bounds of an existing histogram are kept as-is.
    pub fn observe_with(&self, name: &str, value: f64, bounds: &[f64]) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.lock();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Read one counter (0 when absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Read one gauge (0.0 when absent).
    pub fn gauge_value(&self, name: &str) -> f64 {
        self.lock().gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Capture the current state of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        Snapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        HistogramSnapshot {
                            bounds: h.bounds.clone(),
                            counts: h.counts.clone(),
                            total: h.total(),
                            sum: h.sum,
                        },
                    )
                })
                .collect(),
        }
    }

    /// Zero every metric (names are forgotten, not kept at zero).
    pub fn reset(&self) {
        let mut inner = self.lock();
        *inner = Inner::default();
    }

    /// Folds a snapshot into this registry: counters and gauges add,
    /// histograms add bucket-wise. This is the **commutative** reduction
    /// used to fold per-worker scoped registries back into the parent
    /// after a parallel region — because every combination is addition,
    /// the merged totals are independent of the order workers finished in,
    /// which is what makes parallel telemetry deterministic.
    ///
    /// Two caveats, both documented properties rather than surprises:
    ///
    /// - *Level* gauges (written with [`Registry::set`]) are merged
    ///   additively like accumulators. Last-write-wins has no commutative
    ///   merge; parallel code should only record additive quantities
    ///   (which is all the simulator's hot paths do).
    /// - Histograms whose bucket bounds differ from the resident ones
    ///   cannot be aligned bucket-by-bucket; their observations are folded
    ///   into the resident histogram's overflow bucket (count and sum are
    ///   preserved exactly).
    pub fn merge(&self, other: &Snapshot) {
        let mut inner = self.lock();
        for (name, &v) in &other.counters {
            *inner.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, &v) in &other.gauges {
            *inner.gauges.entry(name.clone()).or_insert(0.0) += v;
        }
        for (name, h) in &other.histograms {
            match inner.histograms.get_mut(name) {
                None => {
                    inner.histograms.insert(
                        name.clone(),
                        Histogram {
                            bounds: h.bounds.clone(),
                            counts: h.counts.clone(),
                            sum: h.sum,
                        },
                    );
                }
                Some(mine) if mine.bounds == h.bounds => {
                    for (a, b) in mine.counts.iter_mut().zip(&h.counts) {
                        *a += b;
                    }
                    mine.sum += h.sum;
                }
                Some(mine) => {
                    // Incompatible bucket layouts: preserve totals in the
                    // overflow bucket rather than dropping observations.
                    *mine.counts.last_mut().expect("histograms have an overflow bucket") += h.total;
                    mine.sum += h.sum;
                }
            }
        }
    }
}

/// A point-in-time copy of a [`Registry`], serializable and diffable.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Snapshot {
    /// Monotonic event counts.
    pub counters: BTreeMap<String, u64>,
    /// Accumulators and level gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Fixed-bucket histograms.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// True when no metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The change from `earlier` to `self`: counters and accumulating
    /// gauges subtract (saturating at zero for counters), histograms
    /// subtract bucket-wise when bounds agree (and fall back to `self`'s
    /// state when they do not, e.g. after a reset changed the buckets).
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| {
                let before = earlier.counters.get(k).copied().unwrap_or(0);
                (k.clone(), v.saturating_sub(before))
            })
            .filter(|(_, v)| *v > 0)
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, &v)| {
                let before = earlier.gauges.get(k).copied().unwrap_or(0.0);
                (k.clone(), v - before)
            })
            .filter(|(_, v)| *v != 0.0)
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let diffed = match earlier.histograms.get(k) {
                    Some(e) if e.bounds == h.bounds => HistogramSnapshot {
                        bounds: h.bounds.clone(),
                        counts: h
                            .counts
                            .iter()
                            .zip(&e.counts)
                            .map(|(a, b)| a.saturating_sub(*b))
                            .collect(),
                        total: h.total.saturating_sub(e.total),
                        sum: h.sum - e.sum,
                    },
                    _ => h.clone(),
                };
                (k.clone(), diffed)
            })
            .filter(|(_, h)| h.total > 0)
            .collect();
        Snapshot { counters, gauges, histograms }
    }

    /// The commutative pure form of [`Registry::merge`]: a snapshot
    /// holding the sum of `self` and `other`. `a.merged(&b) ==
    /// b.merged(&a)` whenever the two snapshots' histograms use the same
    /// bucket bounds (mismatched bounds fold into the overflow bucket of
    /// whichever operand is merged first — see [`Registry::merge`]).
    pub fn merged(&self, other: &Snapshot) -> Snapshot {
        let reg = Registry::new();
        reg.merge(self);
        reg.merge(other);
        reg.snapshot()
    }

    /// Counter names that start with `prefix` (used by reports and tests
    /// to slice one subsystem out of the hierarchy).
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters
            .iter()
            .filter(move |(k, _)| k.starts_with(prefix))
            .map(|(k, &v)| (k.as_str(), v))
    }

    /// Aligned, human-readable table of every metric.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("(no metrics recorded)\n");
            return out;
        }
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(String::len)
            .max()
            .unwrap_or(0)
            .max(8);
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<width$}  {v:>14}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<width$}  {v:>14.4}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                match h.quantile_summary() {
                    Some((p50, p95, p99)) => out.push_str(&format!(
                        "  {name:<width$}  n={} mean={:.4} p50~{p50:.4} p95~{p95:.4} p99~{p99:.4}\n",
                        h.total,
                        h.mean()
                    )),
                    None => {
                        out.push_str(&format!("  {name:<width$}  n={} mean={:.4}\n", h.total, h.mean()))
                    }
                }
                for (i, count) in h.counts.iter().enumerate() {
                    if *count == 0 {
                        continue;
                    }
                    let label = if i < h.bounds.len() {
                        format!("<= {:.3e}", h.bounds[i])
                    } else {
                        "overflow".to_string()
                    };
                    out.push_str(&format!("    {label:<12} {count:>10}\n"));
                }
            }
        }
        out
    }

    /// JSON form (object with `counters` / `gauges` / `histograms`).
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::to_value(self).expect("snapshot serializes")
    }

    /// Per-histogram quantile summaries as JSON — one object per
    /// histogram with `count`, `mean`, and estimated `p50`/`p95`/`p99`
    /// (see [`HistogramSnapshot::quantile`] for the estimation and
    /// overflow-clamping semantics). Empty histograms are omitted. This
    /// is what the experiment sidecars embed next to the raw buckets so
    /// downstream tooling gets tail summaries without re-deriving them.
    pub fn quantile_summaries(&self) -> serde_json::Value {
        let mut out = Vec::new();
        for (name, h) in &self.histograms {
            if let Some((p50, p95, p99)) = h.quantile_summary() {
                out.push((
                    name.clone(),
                    serde_json::json!({
                        "count": h.total,
                        "mean": h.mean(),
                        "p50": p50,
                        "p95": p95,
                        "p99": p99,
                    }),
                ));
            }
        }
        serde_json::Value::Map(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let r = Registry::new();
        r.count("a.b.c", 2);
        r.count("a.b.c", 3);
        assert_eq!(r.counter_value("a.b.c"), 5);
        r.reset();
        assert_eq!(r.counter_value("a.b.c"), 0);
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn disabled_registry_is_inert() {
        let r = Registry::new();
        r.set_enabled(false);
        r.count("x", 1);
        r.add("y", 2.0);
        r.observe("z", 3.0);
        assert!(r.snapshot().is_empty());
        r.set_enabled(true);
        r.count("x", 1);
        assert_eq!(r.counter_value("x"), 1);
    }

    #[test]
    fn gauges_add_and_set() {
        let r = Registry::new();
        r.add("energy", 1.5);
        r.add("energy", 2.5);
        r.set("level", 7.0);
        r.set("level", 3.0);
        assert!((r.gauge_value("energy") - 4.0).abs() < 1e-12);
        assert!((r.gauge_value("level") - 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let r = Registry::new();
        for v in [0.5, 5.0, 5e7] {
            r.observe("h", v);
        }
        let snap = r.snapshot();
        let h = &snap.histograms["h"];
        assert_eq!(h.total, 3);
        assert_eq!(*h.counts.last().unwrap(), 1, "5e7 overflows");
        assert!((h.mean() - (0.5 + 5.0 + 5e7) / 3.0).abs() < 1e-6);
    }

    #[test]
    fn snapshot_diff_isolates_a_window() {
        let r = Registry::new();
        r.count("ops", 10);
        r.add("e", 1.0);
        r.observe("h", 2.0);
        let before = r.snapshot();
        r.count("ops", 7);
        r.add("e", 0.5);
        r.observe("h", 3.0);
        r.observe("h", 2e9);
        let after = r.snapshot();
        let d = after.diff(&before);
        assert_eq!(d.counters["ops"], 7);
        assert!((d.gauges["e"] - 0.5).abs() < 1e-12);
        assert_eq!(d.histograms["h"].total, 2);
        assert!((d.histograms["h"].sum - (3.0 + 2e9)).abs() < 1.0);
    }

    #[test]
    fn diff_after_reset_equals_fresh_state() {
        let r = Registry::new();
        r.count("ops", 4);
        let before = r.snapshot();
        r.reset();
        r.count("ops", 9);
        let after = r.snapshot();
        // Counter went 4 -> 9 from the snapshot's view; the diff saturates
        // rather than inventing negative counts.
        assert_eq!(after.diff(&before).counters["ops"], 5);
        // Against an empty baseline the diff is the state itself.
        assert_eq!(after.diff(&Snapshot::default()), after);
    }

    #[test]
    fn render_and_json_round_trip() {
        let r = Registry::new();
        r.count("crossbar.cam.searches", 12);
        r.add("star.energy.exp_pj", 3.25);
        r.observe("pipeline.row_ns", 42.0);
        let snap = r.snapshot();
        let pretty = snap.render_pretty();
        assert!(pretty.contains("crossbar.cam.searches"));
        assert!(pretty.contains("star.energy.exp_pj"));
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: Snapshot = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, snap);
    }

    #[test]
    fn merge_adds_every_metric_kind() {
        let a = Registry::new();
        a.count("ops", 3);
        a.add("energy", 1.5);
        a.observe("h", 2.0);
        let b = Registry::new();
        b.count("ops", 4);
        b.count("only_b", 1);
        b.add("energy", 0.5);
        b.observe("h", 3.0);
        a.merge(&b.snapshot());
        let merged = a.snapshot();
        assert_eq!(merged.counters["ops"], 7);
        assert_eq!(merged.counters["only_b"], 1);
        assert!((merged.gauges["energy"] - 2.0).abs() < 1e-12);
        assert_eq!(merged.histograms["h"].total, 2);
        assert!((merged.histograms["h"].sum - 5.0).abs() < 1e-12);
    }

    #[test]
    fn merge_into_empty_is_identity() {
        let src = Registry::new();
        src.count("x", 9);
        src.add("g", 4.25);
        src.observe_with("h", 1.5, &[1.0, 2.0]);
        let snap = src.snapshot();
        let dst = Registry::new();
        dst.merge(&snap);
        assert_eq!(dst.snapshot(), snap);
    }

    #[test]
    fn merged_snapshots_commute() {
        let a = Registry::new();
        a.count("ops", 2);
        a.observe("h", 0.5);
        let b = Registry::new();
        b.count("ops", 5);
        b.add("e", 1.0);
        b.observe("h", 7.0);
        let (sa, sb) = (a.snapshot(), b.snapshot());
        assert_eq!(sa.merged(&sb), sb.merged(&sa));
    }

    #[test]
    fn merge_mismatched_bounds_preserves_totals_in_overflow() {
        let a = Registry::new();
        a.observe_with("h", 0.5, &[1.0, 2.0]);
        let b = Registry::new();
        b.observe_with("h", 0.5, &[10.0]);
        b.observe_with("h", 0.25, &[10.0]);
        a.merge(&b.snapshot());
        let h = &a.snapshot().histograms["h"];
        assert_eq!(h.bounds, vec![1.0, 2.0], "resident bounds win");
        assert_eq!(h.total, 3, "no observation dropped");
        assert_eq!(*h.counts.last().unwrap(), 2, "foreign observations land in overflow");
        assert!((h.sum - 1.25).abs() < 1e-12);
    }

    #[test]
    fn quantile_empty_histogram_is_none() {
        let h = HistogramSnapshot {
            bounds: DEFAULT_BUCKET_BOUNDS.to_vec(),
            counts: vec![0; DEFAULT_BUCKET_BOUNDS.len() + 1],
            total: 0,
            sum: 0.0,
        };
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile_summary(), None);
        // Empty histograms never appear in summaries.
        let r = Registry::new();
        r.count("not.a.histogram", 1);
        assert_eq!(r.snapshot().quantile_summaries(), serde_json::Value::Map(vec![]));
    }

    #[test]
    fn quantile_single_sample() {
        let r = Registry::new();
        r.observe_with("h", 5.0, &[1.0, 10.0, 100.0]);
        let snap = r.snapshot();
        let h = &snap.histograms["h"];
        // One sample in (1, 10]: every quantile interpolates inside that
        // bucket and with a single count lands on the upper bound.
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(10.0), "q={q}");
        }
        assert_eq!(h.quantile_summary(), Some((10.0, 10.0, 10.0)));
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let r = Registry::new();
        // 100 observations uniform over the (0, 1] bucket, 100 over (1, 2].
        for _ in 0..100 {
            r.observe_with("h", 0.5, &[1.0, 2.0]);
            r.observe_with("h", 1.5, &[1.0, 2.0]);
        }
        let snap = r.snapshot();
        let h = &snap.histograms["h"];
        // Rank 100 of 200 is the last of the first bucket → its upper edge.
        assert_eq!(h.quantile(0.5), Some(1.0));
        // Rank 150 is halfway through the second bucket → 1.5.
        assert_eq!(h.quantile(0.75), Some(1.5));
        // Rank 1 is 1/100 into the first bucket.
        assert!((h.quantile(0.0).unwrap() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn quantile_heavy_tail_clamps_to_last_bound() {
        let r = Registry::new();
        // 1 in-range observation, 99 far past the last bound: the p50 and
        // p99 both live in the overflow bucket, which clamps to the last
        // finite bound (a documented lower bound, not an estimate).
        r.observe_with("h", 0.5, &[1.0, 2.0]);
        for _ in 0..99 {
            r.observe_with("h", 1e12, &[1.0, 2.0]);
        }
        let snap = r.snapshot();
        let h = &snap.histograms["h"];
        assert_eq!(h.quantile(0.5), Some(2.0));
        assert_eq!(h.quantile(0.99), Some(2.0));
        // The single in-range sample is still reachable at q = 0.
        assert_eq!(h.quantile(0.0), Some(1.0));
    }

    #[test]
    fn geometric_bounds_cover_range_with_uniform_ratio() {
        let alpha = 0.25;
        let bounds = geometric_bounds(alpha, 1.0, 1e6);
        assert_eq!(bounds[0], 1.0);
        assert!(*bounds.last().unwrap() >= 1e6);
        for w in bounds.windows(2) {
            let ratio = (w[1] - w[0]) / w[0];
            assert!((ratio - alpha).abs() < 1e-9, "{ratio}");
        }
        // The snapshot-level bound matches the construction parameter.
        let r = Registry::new();
        r.observe_with("h", 10.0, &bounds);
        let snap = r.snapshot();
        let bound = snap.histograms["h"].relative_error_bound().expect("bounded layout");
        assert!((bound - alpha).abs() < 1e-9, "{bound}");
    }

    #[test]
    fn relative_error_bound_edge_cases() {
        let decade = HistogramSnapshot {
            bounds: DEFAULT_BUCKET_BOUNDS.to_vec(),
            counts: vec![0; DEFAULT_BUCKET_BOUNDS.len() + 1],
            total: 0,
            sum: 0.0,
        };
        // Decade buckets: documented (coarse) bound of 9.
        assert!((decade.relative_error_bound().unwrap() - 9.0).abs() < 1e-9);
        // Single bound or a non-positive lower edge: no finite guarantee.
        let single =
            HistogramSnapshot { bounds: vec![5.0], counts: vec![0, 0], total: 0, sum: 0.0 };
        assert_eq!(single.relative_error_bound(), None);
        let zero_edge =
            HistogramSnapshot { bounds: vec![0.0, 1.0], counts: vec![0, 0, 0], total: 0, sum: 0.0 };
        assert_eq!(zero_edge.relative_error_bound(), None);
    }

    #[test]
    #[should_panic(expected = "0 < min < max")]
    fn geometric_bounds_reject_inverted_range() {
        let _ = geometric_bounds(0.1, 10.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn quantile_rejects_out_of_range() {
        let r = Registry::new();
        r.observe("h", 1.0);
        let snap = r.snapshot();
        let _ = snap.histograms["h"].quantile(1.5);
    }

    #[test]
    fn quantile_summaries_render_json() {
        let r = Registry::new();
        for v in [1.0, 2.0, 3.0, 500.0] {
            r.observe_with("serve.latency", v, &[10.0, 1000.0]);
        }
        let snap = r.snapshot();
        let json = snap.quantile_summaries();
        let entry = json.get("serve.latency").expect("histogram summarized");
        assert_eq!(entry.get("count").and_then(serde_json::Value::as_f64), Some(4.0));
        assert!(entry.get("p50").is_some());
        assert!(entry.get("p95").is_some());
        assert!(entry.get("p99").is_some());
        let pretty = snap.render_pretty();
        assert!(pretty.contains("p99~"), "{pretty}");
    }

    #[test]
    fn prefix_slicing() {
        let r = Registry::new();
        r.count("device.adc.conversions", 3);
        r.count("device.rram.writes", 1);
        r.count("crossbar.vmm.activations", 2);
        let snap = r.snapshot();
        let device: Vec<_> = snap.counters_with_prefix("device.").collect();
        assert_eq!(device.len(), 2);
        assert!(device.iter().all(|(k, _)| k.starts_with("device.")));
    }
}
