//! Chrome trace-event JSON emission (the format Perfetto and
//! `chrome://tracing` load).
//!
//! Only the subset the pipeline visualizer needs is modelled: complete
//! (`ph:"X"`) duration events with microsecond timestamps, plus
//! process/thread-name metadata (`ph:"M"`) so lanes are labelled. The
//! output is the plain *array* form — open it directly in
//! <https://ui.perfetto.dev>.

use serde_json::{json, Value};

/// One complete-duration event (`ph:"X"`).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event label shown on the slice.
    pub name: String,
    /// Comma-separated categories.
    pub cat: String,
    /// Start timestamp in microseconds.
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Process id lane.
    pub pid: u64,
    /// Thread id lane within the process.
    pub tid: u64,
    /// Free-form argument payload (shown in the detail pane).
    pub args: Value,
}

/// One counter sample (`ph:"C"`): Perfetto renders a counter track per
/// `(pid, name)` with one series per key in `args`.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterEvent {
    /// Counter-track name.
    pub name: String,
    /// Sample timestamp in microseconds.
    pub ts_us: f64,
    /// Process id lane.
    pub pid: u64,
    /// Series name → value at this timestamp.
    pub series: Vec<(String, f64)>,
}

/// Builder for a Chrome trace: events plus lane-name metadata.
#[derive(Debug, Default, Clone)]
pub struct ChromeTrace {
    process_names: Vec<(u64, String)>,
    thread_names: Vec<(u64, u64, String)>,
    events: Vec<TraceEvent>,
    counters: Vec<CounterEvent>,
}

impl ChromeTrace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Label process lane `pid`.
    pub fn name_process(&mut self, pid: u64, name: impl Into<String>) -> &mut Self {
        self.process_names.push((pid, name.into()));
        self
    }

    /// Label thread lane `tid` within `pid`.
    pub fn name_thread(&mut self, pid: u64, tid: u64, name: impl Into<String>) -> &mut Self {
        self.thread_names.push((pid, tid, name.into()));
        self
    }

    /// Append a complete event; `ts`/`dur` are in **nanoseconds** (the
    /// simulator's unit) and converted to the format's microseconds here.
    #[allow(clippy::too_many_arguments)] // mirrors the trace-event field list
    pub fn complete_ns(
        &mut self,
        name: impl Into<String>,
        cat: impl Into<String>,
        ts_ns: f64,
        dur_ns: f64,
        pid: u64,
        tid: u64,
        args: Value,
    ) -> &mut Self {
        self.events.push(TraceEvent {
            name: name.into(),
            cat: cat.into(),
            ts_us: ts_ns / 1e3,
            dur_us: dur_ns / 1e3,
            pid,
            tid,
            args,
        });
        self
    }

    /// Append one counter sample (`ph:"C"`); `ts` in **nanoseconds**.
    /// Each `(series, value)` pair becomes one stacked series on the
    /// `(pid, name)` counter track.
    pub fn counter_ns(
        &mut self,
        name: impl Into<String>,
        ts_ns: f64,
        pid: u64,
        series: Vec<(String, f64)>,
    ) -> &mut Self {
        self.counters.push(CounterEvent { name: name.into(), ts_us: ts_ns / 1e3, pid, series });
        self
    }

    /// Number of duration events recorded (counter samples not included;
    /// see [`ChromeTrace::counter_len`]).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Number of counter samples recorded.
    pub fn counter_len(&self) -> usize {
        self.counters.len()
    }

    /// True when no duration event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The trace as a JSON array of trace events (metadata first).
    pub fn to_json(&self) -> Value {
        let mut out: Vec<Value> = Vec::new();
        for (pid, name) in &self.process_names {
            out.push(json!({
                "name": "process_name",
                "ph": "M",
                "pid": *pid,
                "tid": 0u64,
                "args": { "name": name.clone() },
            }));
        }
        for (pid, tid, name) in &self.thread_names {
            out.push(json!({
                "name": "thread_name",
                "ph": "M",
                "pid": *pid,
                "tid": *tid,
                "args": { "name": name.clone() },
            }));
        }
        for e in &self.events {
            out.push(json!({
                "name": e.name.clone(),
                "cat": e.cat.clone(),
                "ph": "X",
                "ts": e.ts_us,
                "dur": e.dur_us,
                "pid": e.pid,
                "tid": e.tid,
                "args": e.args.clone(),
            }));
        }
        for c in &self.counters {
            let args = Value::Map(c.series.iter().map(|(k, v)| (k.clone(), json!(*v))).collect());
            out.push(json!({
                "name": c.name.clone(),
                "ph": "C",
                "ts": c.ts_us,
                "pid": c.pid,
                "tid": 0u64,
                "args": args,
            }));
        }
        Value::Seq(out)
    }

    /// The trace in Chrome's *object* form: `{"traceEvents": [...], ...}`
    /// with `extras` appended as additional top-level keys. Perfetto loads
    /// the object form and ignores unknown keys, so callers can embed
    /// machine-readable sidecar data (span records, SLO analyses) in the
    /// same file the UI opens.
    pub fn to_object_json(&self, extras: Vec<(String, Value)>) -> Value {
        let mut map = vec![("traceEvents".to_string(), self.to_json())];
        map.extend(extras);
        Value::Map(map)
    }

    /// Compact JSON string of [`ChromeTrace::to_json`].
    pub fn to_json_string(&self) -> String {
        serde_json::to_string(&self.to_json()).expect("trace serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_convert_ns_to_us() {
        let mut t = ChromeTrace::new();
        t.complete_ns("qk", "matmul", 1500.0, 500.0, 1, 2, json!({"row": 0}));
        let arr = match t.to_json() {
            Value::Seq(v) => v,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr.len(), 1);
        let e = &arr[0];
        assert_eq!(e.get("ph").and_then(Value::as_str), Some("X"));
        assert!((e.get("ts").unwrap().as_f64().unwrap() - 1.5).abs() < 1e-12);
        assert!((e.get("dur").unwrap().as_f64().unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(e.get("pid").unwrap().as_f64().unwrap() as u64, 1);
        assert_eq!(e.get("tid").unwrap().as_f64().unwrap() as u64, 2);
    }

    #[test]
    fn metadata_precedes_events() {
        let mut t = ChromeTrace::new();
        t.name_process(1, "attention");
        t.name_thread(1, 3, "softmax#0");
        t.complete_ns("sm", "softmax", 0.0, 10.0, 1, 3, json!({}));
        let arr = match t.to_json() {
            Value::Seq(v) => v,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].get("ph").and_then(Value::as_str), Some("M"));
        assert_eq!(arr[1].get("name").and_then(Value::as_str), Some("thread_name"));
        assert_eq!(arr[2].get("ph").and_then(Value::as_str), Some("X"));
    }

    #[test]
    fn counter_events_render_as_ph_c() {
        let mut t = ChromeTrace::new();
        t.counter_ns("queue depth", 2000.0, 9, vec![("queued".into(), 3.0), ("busy".into(), 1.0)]);
        assert_eq!(t.counter_len(), 1);
        assert_eq!(t.len(), 0, "counters are not duration events");
        let arr = match t.to_json() {
            Value::Seq(v) => v,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr.len(), 1);
        let e = &arr[0];
        assert_eq!(e.get("ph").and_then(Value::as_str), Some("C"));
        assert!((e.get("ts").unwrap().as_f64().unwrap() - 2.0).abs() < 1e-12);
        let args = e.get("args").expect("counter args");
        assert_eq!(args.get("queued").and_then(Value::as_f64), Some(3.0));
        assert_eq!(args.get("busy").and_then(Value::as_f64), Some(1.0));
    }

    #[test]
    fn object_form_wraps_trace_events_and_extras() {
        let mut t = ChromeTrace::new();
        t.complete_ns("a", "c", 0.0, 1.0, 1, 1, json!({}));
        let obj = t.to_object_json(vec![("star".to_string(), json!({"k": 1}))]);
        let events = obj.get("traceEvents").expect("traceEvents key");
        assert_eq!(events, &t.to_json());
        assert_eq!(obj.get("star").and_then(|s| s.get("k")).and_then(Value::as_f64), Some(1.0));
    }

    #[test]
    fn round_trips_through_parser() {
        let mut t = ChromeTrace::new();
        t.complete_ns("a", "c", 0.0, 1.0, 0, 0, json!({"k": 1.5}));
        let s = t.to_json_string();
        let back: Value = serde_json::from_str(&s).expect("valid JSON");
        assert_eq!(back, t.to_json());
    }
}
