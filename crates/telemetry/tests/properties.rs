//! Property-based tests for the metric registry: snapshot/reset/diff
//! algebra and serde round-trips.

use proptest::prelude::*;
use star_telemetry::{Registry, Snapshot};

/// A small closed name universe so draws collide and exercise merging.
fn names() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec![
        "device.adc.conversions",
        "crossbar.cam.searches",
        "star.exp.lut_hits",
        "pipeline.softmax.stall_ns",
    ])
}

fn apply_counts(reg: &Registry, ops: &[(&str, u64)]) {
    for (name, n) in ops {
        reg.count(name, *n);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn diff_recovers_second_batch(
        first in prop::collection::vec((names(), 1u64..1000), 0..16),
        second in prop::collection::vec((names(), 1u64..1000), 0..16),
    ) {
        let reg = Registry::new();
        apply_counts(&reg, &first);
        let a = reg.snapshot();
        apply_counts(&reg, &second);
        let b = reg.snapshot();
        let delta = b.diff(&a);

        // The diff is exactly the second batch, independent of the first.
        let only_second = Registry::new();
        apply_counts(&only_second, &second);
        prop_assert_eq!(&delta.counters, &only_second.snapshot().counters);
    }

    #[test]
    fn snapshot_reset_diff_round_trips(
        ops in prop::collection::vec((names(), 1u64..1000), 1..24),
        gauge in -1e6f64..1e6,
    ) {
        let reg = Registry::new();
        apply_counts(&reg, &ops);
        reg.add("star.energy.exp_pj", gauge);
        reg.observe("star.softmax.row_len", 64.0);
        let before = reg.snapshot();
        prop_assert!(!before.is_empty());

        // Snapshot → reset → the registry is empty again.
        reg.reset();
        prop_assert!(reg.snapshot().is_empty());

        // Replaying the same operations reproduces the snapshot exactly.
        apply_counts(&reg, &ops);
        reg.add("star.energy.exp_pj", gauge);
        reg.observe("star.softmax.row_len", 64.0);
        let after = reg.snapshot();
        prop_assert_eq!(&after, &before);

        // A snapshot diffed against itself is empty.
        prop_assert!(after.diff(&before).is_empty());
    }

    #[test]
    fn snapshot_serde_round_trips(
        ops in prop::collection::vec((names(), 1u64..1000), 0..16),
        gauge in -1e3f64..1e3,
    ) {
        let reg = Registry::new();
        apply_counts(&reg, &ops);
        reg.set("pipeline.engines", gauge);
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: Snapshot = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(&back, &snap);
    }

    #[test]
    fn disabled_registry_records_nothing(
        ops in prop::collection::vec((names(), 1u64..1000), 0..16),
    ) {
        let reg = Registry::new();
        reg.set_enabled(false);
        apply_counts(&reg, &ops);
        reg.add("g", 1.0);
        reg.observe("h", 2.0);
        prop_assert!(reg.snapshot().is_empty());
        reg.set_enabled(true);
        reg.count("c", 1);
        prop_assert_eq!(reg.counter_value("c"), 1);
    }
}
