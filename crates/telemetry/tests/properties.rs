//! Property-based tests for the metric registry: snapshot/reset/diff
//! algebra, serde round-trips, and the histogram quantile accuracy
//! guarantee.

use proptest::prelude::*;
use star_telemetry::{geometric_bounds, Registry, Snapshot};

/// A small closed name universe so draws collide and exercise merging.
fn names() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec![
        "device.adc.conversions",
        "crossbar.cam.searches",
        "star.exp.lut_hits",
        "pipeline.softmax.stall_ns",
    ])
}

fn apply_counts(reg: &Registry, ops: &[(&str, u64)]) {
    for (name, n) in ops {
        reg.count(name, *n);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn diff_recovers_second_batch(
        first in prop::collection::vec((names(), 1u64..1000), 0..16),
        second in prop::collection::vec((names(), 1u64..1000), 0..16),
    ) {
        let reg = Registry::new();
        apply_counts(&reg, &first);
        let a = reg.snapshot();
        apply_counts(&reg, &second);
        let b = reg.snapshot();
        let delta = b.diff(&a);

        // The diff is exactly the second batch, independent of the first.
        let only_second = Registry::new();
        apply_counts(&only_second, &second);
        prop_assert_eq!(&delta.counters, &only_second.snapshot().counters);
    }

    #[test]
    fn snapshot_reset_diff_round_trips(
        ops in prop::collection::vec((names(), 1u64..1000), 1..24),
        gauge in -1e6f64..1e6,
    ) {
        let reg = Registry::new();
        apply_counts(&reg, &ops);
        reg.add("star.energy.exp_pj", gauge);
        reg.observe("star.softmax.row_len", 64.0);
        let before = reg.snapshot();
        prop_assert!(!before.is_empty());

        // Snapshot → reset → the registry is empty again.
        reg.reset();
        prop_assert!(reg.snapshot().is_empty());

        // Replaying the same operations reproduces the snapshot exactly.
        apply_counts(&reg, &ops);
        reg.add("star.energy.exp_pj", gauge);
        reg.observe("star.softmax.row_len", 64.0);
        let after = reg.snapshot();
        prop_assert_eq!(&after, &before);

        // A snapshot diffed against itself is empty.
        prop_assert!(after.diff(&before).is_empty());
    }

    #[test]
    fn snapshot_serde_round_trips(
        ops in prop::collection::vec((names(), 1u64..1000), 0..16),
        gauge in -1e3f64..1e3,
    ) {
        let reg = Registry::new();
        apply_counts(&reg, &ops);
        reg.set("pipeline.engines", gauge);
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: Snapshot = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(&back, &snap);
    }

    #[test]
    fn merge_is_commutative_and_associative(
        a in prop::collection::vec((names(), 1u64..1000), 0..16),
        b in prop::collection::vec((names(), 1u64..1000), 0..16),
        c in prop::collection::vec((names(), 1u64..1000), 0..16),
        values in prop::collection::vec(-1e3f64..1e3, 3),
    ) {
        let snaps: Vec<Snapshot> = [(&a, values[0]), (&b, values[1]), (&c, values[2])]
            .iter()
            .map(|(ops, v)| {
                let reg = Registry::new();
                apply_counts(&reg, ops);
                reg.add("star.energy.exp_pj", *v);
                reg.observe("star.softmax.row_len", v.abs());
                reg.snapshot()
            })
            .collect();
        let (sa, sb, sc) = (&snaps[0], &snaps[1], &snaps[2]);
        // IEEE-754 addition is commutative, so two-way merges are
        // *bit-identical* in either order …
        prop_assert_eq!(sa.merged(sb), sb.merged(sa));
        // … but not associative: regrouping three merges may move the last
        // ulp of an f64 gauge. The integer parts (counters, histogram
        // bucket counts) are exactly associative; float accumulators agree
        // to rounding. This is precisely why the executor's call sites
        // fold worker snapshots in *index order* — a fixed fold order plus
        // commutativity makes parallel telemetry bit-deterministic.
        let left = sa.merged(sb).merged(sc);
        let right = sa.merged(&sb.merged(sc));
        prop_assert_eq!(&left.counters, &right.counters);
        for (name, lh) in &left.histograms {
            let rh = &right.histograms[name];
            prop_assert_eq!(&lh.counts, &rh.counts);
            prop_assert_eq!(lh.total, rh.total);
            prop_assert!((lh.sum - rh.sum).abs() <= 1e-9 * lh.sum.abs().max(1.0));
        }
        for (name, lv) in &left.gauges {
            let rv = right.gauges[name];
            prop_assert!((lv - rv).abs() <= 1e-9 * lv.abs().max(1.0));
        }
    }

    #[test]
    fn merge_equals_running_both_workloads_in_one_registry(
        a in prop::collection::vec((names(), 1u64..1000), 0..16),
        b in prop::collection::vec((names(), 1u64..1000), 0..16),
    ) {
        // Two "workers" record independently and merge into a parent …
        let (wa, wb) = (Registry::new(), Registry::new());
        apply_counts(&wa, &a);
        apply_counts(&wb, &b);
        let parent = Registry::new();
        parent.merge(&wa.snapshot());
        parent.merge(&wb.snapshot());
        // … which is indistinguishable from one serial registry that ran
        // the concatenated workload.
        let serial = Registry::new();
        apply_counts(&serial, &a);
        apply_counts(&serial, &b);
        prop_assert_eq!(parent.snapshot(), serial.snapshot());
    }

    #[test]
    fn quantile_estimate_honors_relative_error_bound(
        // Log-uniform samples strictly inside the covered range
        // (exp(0.1..13.8) ⊂ (1, 1e6)); mixed sizes exercise small-n ranks.
        log_samples in prop::collection::vec(0.1f64..13.8, 1..400),
        alpha in 0.05f64..0.5,
        q in 0.0f64..1.0,
    ) {
        let samples: Vec<f64> = log_samples.iter().map(|l| l.exp()).collect();
        let bounds = geometric_bounds(alpha, 1.0, 1e6);
        let reg = Registry::new();
        for &s in &samples {
            reg.observe_with("h", s, &bounds);
        }
        let snap = reg.snapshot();
        let h = &snap.histograms["h"];
        let bound = h.relative_error_bound().expect("geometric layout is bounded");
        // The layout's guarantee is the construction parameter.
        prop_assert!((bound - alpha).abs() < 1e-9, "bound {bound} vs alpha {alpha}");

        // Exact order statistic under the same rank convention as
        // `HistogramSnapshot::quantile`: rank = max(1, ceil(q*n)).
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        let exact = sorted[rank - 1];

        let est = h.quantile(q).expect("non-empty histogram");
        let rel = (est - exact).abs() / exact;
        prop_assert!(
            rel <= bound + 1e-9,
            "q={q} est={est} exact={exact} rel={rel} > bound={bound}"
        );
    }

    #[test]
    fn disabled_registry_records_nothing(
        ops in prop::collection::vec((names(), 1u64..1000), 0..16),
    ) {
        let reg = Registry::new();
        reg.set_enabled(false);
        apply_counts(&reg, &ops);
        reg.add("g", 1.0);
        reg.observe("h", 2.0);
        prop_assert!(reg.snapshot().is_empty());
        reg.set_enabled(true);
        reg.count("c", 1);
        prop_assert_eq!(reg.counter_value("c"), 1);
    }
}
