//! Property-based tests for the softmax engines and the pipeline model.

use proptest::prelude::*;
use star_core::{
    attention_pipeline_latency, fixed_divide, simulate_pipeline, CmosBaselineSoftmax, PipelineMode,
    RowDurations, RowSoftmax, RowStageLatency, Softermax, SoftmaxEngine, StarSoftmax,
    StarSoftmaxConfig, UtilizationReport,
};
use star_device::Latency;
use star_fixed::QFormat;

fn paper_formats() -> impl Strategy<Value = QFormat> {
    prop::sample::select(vec![QFormat::COLA, QFormat::CNEWS, QFormat::MRPC])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fixed_divide_never_exceeds_true_quotient(n in 0u64..1_000_000, d in 1u64..1_000_000, q in 1u8..=24) {
        let approx = fixed_divide(n, d, q);
        let truth = n as f64 / d as f64;
        prop_assert!(approx <= truth + 1e-12);
        prop_assert!(truth - approx <= 2f64.powi(-(q as i32)) + 1e-12);
    }

    #[test]
    fn pipeline_mode_ordering(qk in 0.1f64..1000.0, sm in 0.1f64..1000.0, av in 0.1f64..1000.0, rows in 1usize..600) {
        let stages = RowStageLatency::new(Latency::new(qk), Latency::new(sm), Latency::new(av));
        let flat = attention_pipeline_latency(rows, stages, PipelineMode::Unpipelined);
        let op = attention_pipeline_latency(rows, stages, PipelineMode::OperandGrained);
        let vec = attention_pipeline_latency(rows, stages, PipelineMode::VectorGrained);
        prop_assert!(vec.value() <= op.value() + 1e-9);
        prop_assert!(op.value() <= flat.value() + 1e-9);
        // Lower bound: nothing beats the bottleneck stage times rows.
        prop_assert!(vec.value() + 1e-9 >= stages.bottleneck().value() * rows as f64);
        // Upper bound: nothing exceeds fully serial execution.
        prop_assert!(vec.value() <= stages.serial().value() * rows as f64 + 1e-9);
    }

    #[test]
    fn event_simulator_agrees_with_formula(
        qk in 0.1f64..500.0,
        sm in 0.1f64..500.0,
        av in 0.1f64..500.0,
        rows in 1usize..200,
    ) {
        let stages = RowStageLatency::new(Latency::new(qk), Latency::new(sm), Latency::new(av));
        let durations = RowDurations::uniform(rows, qk, sm, av);
        for mode in PipelineMode::ALL {
            let formula = attention_pipeline_latency(rows, stages, mode).value();
            let sim = simulate_pipeline(&durations, mode, 1).makespan.value();
            prop_assert!(
                (sim - formula).abs() < 1e-6 * formula.max(1.0),
                "{:?}: sim {} vs formula {}",
                mode, sim, formula
            );
        }
    }

    #[test]
    fn star_probabilities_for_all_paper_formats(
        fmt in paper_formats(),
        row in prop::collection::vec(-10.0f64..10.0, 1..48),
    ) {
        let mut engine = StarSoftmax::new(StarSoftmaxConfig::new(fmt)).expect("engine");
        let p = engine.softmax_row(&row);
        let sum: f64 = p.iter().sum();
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        prop_assert!(sum > 0.9 && sum <= 1.0 + 1e-9, "sum {} at {}", sum, fmt);
        prop_assert_eq!(engine.fault_events(), 0);
    }

    #[test]
    fn star_argmax_agrees_when_gap_resolvable(
        fmt in paper_formats(),
        row in prop::collection::vec(-10.0f64..10.0, 2..32),
        winner in any::<prop::sample::Index>(),
    ) {
        // Give one element a clearly resolvable lead.
        let mut row = row;
        let w = winner.index(row.len());
        let lead = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + 4.0 * fmt.resolution() + 1.0;
        row[w] = lead;
        let mut engine = StarSoftmax::new(StarSoftmaxConfig::new(fmt)).expect("engine");
        let p = engine.softmax_row(&row);
        prop_assert_eq!(star_attention::argmax(&p), w);
    }

    #[test]
    fn softermax_probabilities_bounded(row in prop::collection::vec(-20.0f64..20.0, 1..48)) {
        let mut unit = Softermax::new(QFormat::MRPC, 4);
        let p = unit.softmax_row(&row);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0 + 1e-9).contains(&v)));
        let sum: f64 = p.iter().sum();
        prop_assert!(sum <= 1.05, "sum {}", sum);
    }

    #[test]
    fn engine_costs_scale_sanely(n in 1usize..512, lanes in 1usize..16) {
        let cmos = CmosBaselineSoftmax::new(lanes);
        let cost = cmos.row_cost(n);
        prop_assert!(cost.latency.value() > 0.0);
        prop_assert!(cost.energy.value() > 0.0);
        // Energy is work-proportional, independent of lane count.
        let other = CmosBaselineSoftmax::new(lanes + 1);
        prop_assert!((other.row_cost(n).energy.value() - cost.energy.value()).abs() < 1e-9);
    }

    #[test]
    fn busy_plus_stall_sums_to_makespan_every_mode(
        qk in prop::collection::vec(0.0f64..500.0, 1..64),
        sm_scale in 0.0f64..500.0,
        av_scale in 0.0f64..500.0,
        engines in 1usize..6,
    ) {
        // Non-uniform rows: derive the other stages from the QK draw so
        // all three vectors share a length without extra generators.
        let rows = qk.len();
        let sm: Vec<f64> = qk.iter().map(|&v| (v * 0.7 + sm_scale).min(999.0)).collect();
        let av: Vec<f64> = qk.iter().map(|&v| (v * 1.3 + av_scale).min(999.0)).collect();
        let durations = RowDurations { qk, softmax: sm, av };
        for mode in PipelineMode::ALL {
            let report = UtilizationReport::from_durations(&durations, mode, engines);
            let makespan = simulate_pipeline(&durations, mode, engines).makespan.value();
            prop_assert!((report.makespan_ns - makespan).abs() < 1e-9);
            let lanes = if mode == PipelineMode::VectorGrained { engines + 2 } else { 3 };
            prop_assert_eq!(report.stages.len(), lanes);
            for stage in &report.stages {
                prop_assert!(
                    (stage.busy_ns + stage.stall_ns - report.makespan_ns).abs() < 1e-9,
                    "{:?} lane {} rows {}: busy {} stall {} makespan {}",
                    mode, &stage.name, rows, stage.busy_ns, stage.stall_ns, report.makespan_ns
                );
                prop_assert!(stage.occupancy >= 0.0 && stage.occupancy <= 1.0 + 1e-12);
            }
            // All softmax lanes together account for exactly the total
            // softmax work.
            let sm_busy: f64 = report
                .stages
                .iter()
                .filter(|s| s.name.starts_with("softmax"))
                .map(|s| s.busy_ns)
                .sum();
            let sm_total: f64 = durations.softmax.iter().sum();
            prop_assert!((sm_busy - sm_total).abs() < 1e-6);
        }
    }

    #[test]
    fn telemetry_counters_deterministic_across_same_seed_runs(
        fmt in paper_formats(),
        row in prop::collection::vec(-8.0f64..8.0, 1..32),
    ) {
        let run = || {
            star_telemetry::with_scoped(|| {
                let mut engine =
                    StarSoftmax::new(StarSoftmaxConfig::new(fmt)).expect("engine");
                engine.softmax_row(&row)
            })
        };
        let (out_a, snap_a) = run();
        let (out_b, snap_b) = run();
        prop_assert_eq!(out_a, out_b);
        prop_assert_eq!(&snap_a.counters, &snap_b.counters);
        prop_assert!(!snap_a.counters.is_empty());
        prop_assert_eq!(snap_a.counters["star.softmax.rows"], 1);
        prop_assert_eq!(snap_a.counters["star.softmax.elements"], row.len() as u64);
    }

    #[test]
    fn star_engine_area_monotone_in_bits(ia in 3u8..=6, fa in 0u8..=3) {
        let small = QFormat::new(ia, fa).expect("valid");
        let big = QFormat::new(ia + 1, fa + 1).expect("valid");
        let a = StarSoftmax::new(StarSoftmaxConfig::new(small)).expect("engine");
        let b = StarSoftmax::new(StarSoftmaxConfig::new(big)).expect("engine");
        prop_assert!(
            b.cost_sheet().total_area().value() > a.cost_sheet().total_area().value()
        );
    }
}
