//! Cross-engine differential suite.
//!
//! Every softmax engine in the repo — the STAR crossbar engine, the CMOS
//! FP32 baseline, Softermax, and the exact-FP32 reference — is run against
//! the exact FP64 reference on the same rows, and the disagreement is
//! checked against *documented* error bounds. The rows cover both the
//! calibrated dataset distributions (CNEWS / MRPC / CoLA, each at its
//! paper bit-width) and hand-built adversarial inputs:
//!
//! - all-equal rows (the max-subtraction degenerate case: every
//!   difference is zero, the output must be uniform),
//! - single-spike rows (near-one-hot outputs; the winner must win),
//! - saturating rows (scores beyond the fixed-point range clamp to the
//!   format edge — STAR must degrade to uniform, not NaN or garbage),
//! - quantization-edge rows (scores exactly on and exactly between
//!   9-bit codes, the worst case for round-to-nearest).
//!
//! The error bounds asserted here were calibrated by running the suite
//! with `--nocapture` (each test prints the observed maxima) and rounding
//! up with ≥2× headroom, so they are regression tripwires, not theory.
//! The dominant terms they bundle:
//!
//! - input quantization: ±½·2⁻ᶠʳᵃᶜ on each score before max-subtraction;
//! - STAR's exponential LUT: codes carry `exp_word_bits` (default 16)
//!   fractional bits, so each numerator is off by ≤2⁻¹⁶ relative;
//! - STAR's iterative divider: truncated at `quotient_bits` (default 16)
//!   fractional bits, always *under*-estimating the true quotient;
//! - Softermax's 12-bit power-of-two codes and 12-bit quotients.
//!
//! The CAM max-search is held to a stricter standard than the arithmetic:
//! it must agree with a scalar argmax *exactly* (same max value, same
//! one-hot row) on every input, because stage 1 errors are not graceful —
//! a wrong max breaks the numerical stability of everything downstream.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use star_attention::{ExactF32Softmax, ExactSoftmax, RowSoftmax};
use star_core::{CmosBaselineSoftmax, Softermax, StarSoftmax, StarSoftmaxConfig};
use star_crossbar::CamSubCrossbar;
use star_device::{NoiseModel, TechnologyParams};
use star_fixed::{Fixed, QFormat, Rounding};
use star_workload::{Dataset, ScoreTrace};

/// Largest absolute per-element disagreement between two probability rows.
fn max_abs_err(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "rows must be comparable");
    p.iter().zip(q).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
}

/// Index of the largest element (first winner on ties) — the scalar
/// reference the CAM search is compared against.
fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

/// Tie-aware top-1 agreement: the engine agrees with the reference if the
/// reference winner is among the engine's *maximal* outputs. Quantized
/// engines legitimately collapse a sub-resolution top-2 gap into an exact
/// tie; that is a loss of resolution, not a ranking error, and the
/// bit-width study (E4) already charges for it separately.
fn top1_agrees(probs: &[f64], reference: &[f64]) -> bool {
    let peak = probs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    probs[argmax(reference)] == peak
}

/// Asserts the basic well-formedness contract every engine promises:
/// same length, all entries non-negative and finite, sum within
/// `sum_tol` of 1.
fn assert_valid_distribution(name: &str, row: &[f64], probs: &[f64], sum_tol: f64) {
    assert_eq!(probs.len(), row.len(), "{name}: row length changed");
    for (i, &p) in probs.iter().enumerate() {
        assert!(p.is_finite() && p >= 0.0, "{name}: probs[{i}] = {p} on row {row:?}");
    }
    let sum: f64 = probs.iter().sum();
    assert!((sum - 1.0).abs() <= sum_tol, "{name}: sum {sum} outside 1 ± {sum_tol}");
}

/// One engine under test plus its calibrated per-element error bound
/// against the exact FP64 reference and its normalization tolerance.
struct Contender {
    engine: Box<dyn RowSoftmax>,
    /// Documented per-element |Δp| bound vs exact FP64.
    elem_bound: f64,
    /// Documented |Σp − 1| bound.
    sum_tol: f64,
    /// Minimum fraction of rows whose argmax matches the reference.
    top1_floor: f64,
}

/// The full contender lineup at one dataset's paper operating point.
fn contenders(format: QFormat) -> Vec<Contender> {
    vec![
        // FP32 references: quantization error is ~2⁻²⁴ relative, far
        // below the fixed-point engines. Bound chosen ≥2× observed.
        Contender {
            engine: Box::new(ExactF32Softmax::new()),
            elem_bound: 1e-6,
            sum_tol: 1e-6,
            top1_floor: 1.0,
        },
        Contender {
            engine: Box::new(CmosBaselineSoftmax::new(8)),
            elem_bound: 1e-6,
            sum_tol: 1e-6,
            top1_floor: 1.0,
        },
        // Softermax: inputs are scaled by log₂e *then* quantized, so the
        // effective resolution is coarser and high scores saturate at
        // format.max_value()/log₂e ≈ 22. Observed max |Δp| ≈ 0.08 on the
        // saturating CNEWS/CoLA peaks; sub-resolution top-2 gaps collapse
        // to exact ties (tolerated by the tie-aware top-1 metric).
        Contender {
            engine: Box::new(Softermax::new(format, 8)),
            elem_bound: 0.25,
            sum_tol: 0.05,
            top1_floor: 0.90,
        },
        // STAR at the paper operating point for this dataset. Observed
        // max |Δp| ≈ 0.04 (CoLA 7-bit, coarsest grid); the divider
        // truncates so sums fall short of 1 by ≤ n·2⁻¹⁶ plus exp-code
        // rounding.
        Contender {
            engine: Box::new(
                StarSoftmax::new(StarSoftmaxConfig::new(format)).expect("paper config builds"),
            ),
            elem_bound: 0.10,
            sum_tol: 0.02,
            top1_floor: 0.95,
        },
    ]
}

/// The three paper operating points: dataset distribution + its format.
fn paper_points() -> [(Dataset, QFormat); 3] {
    [
        (Dataset::Cnews, QFormat::CNEWS),
        (Dataset::Mrpc, QFormat::MRPC),
        (Dataset::Cola, QFormat::COLA),
    ]
}

// ───────────────────────── random (calibrated) rows ─────────────────────────

#[test]
fn engines_track_exact_reference_on_dataset_rows() {
    let mut exact = ExactSoftmax::new();
    for (dataset, format) in paper_points() {
        let trace = ScoreTrace::generate(dataset, 64, 48, 0xD1FF);
        for c in &mut contenders(format) {
            let name = c.engine.name().to_string();
            let mut worst_elem = 0.0f64;
            let mut worst_sum = 0.0f64;
            let mut agree = 0usize;
            for row in &trace.rows {
                let reference = exact.softmax_row(row);
                let probs = c.engine.softmax_row(row);
                assert_valid_distribution(&name, row, &probs, c.sum_tol);
                worst_elem = worst_elem.max(max_abs_err(&probs, &reference));
                worst_sum = worst_sum.max((probs.iter().sum::<f64>() - 1.0).abs());
                if top1_agrees(&probs, &reference) {
                    agree += 1;
                }
            }
            let top1 = agree as f64 / trace.rows.len() as f64;
            eprintln!(
                "[calibrate] {dataset:?}/{name}: max|Δp| {worst_elem:.3e}, \
                 max|Σ−1| {worst_sum:.3e}, top1 {top1:.3}"
            );
            assert!(
                worst_elem <= c.elem_bound,
                "{dataset:?}/{name}: max element error {worst_elem:.3e} > bound {:.3e}",
                c.elem_bound
            );
            assert!(
                top1 >= c.top1_floor,
                "{dataset:?}/{name}: top-1 agreement {top1:.3} < floor {}",
                c.top1_floor
            );
        }
    }
}

// ───────────────────────── adversarial rows ─────────────────────────

#[test]
fn all_equal_rows_stay_uniform() {
    // Every difference from the max is zero, so every engine must return
    // the uniform distribution up to its divider precision — including at
    // scores that saturate the fixed-point format.
    for (_, format) in paper_points() {
        for c in &mut contenders(format) {
            let name = c.engine.name().to_string();
            for &value in &[-30.0, -1.5, 0.0, 1.5, 12.0] {
                for &n in &[1usize, 2, 7, 64] {
                    let row = vec![value; n];
                    let probs = c.engine.softmax_row(&row);
                    assert_valid_distribution(&name, &row, &probs, c.sum_tol);
                    let uniform = 1.0 / n as f64;
                    for &p in &probs {
                        assert!(
                            (p - uniform).abs() <= c.elem_bound.max(1e-4),
                            "{name}: all-equal row ({value}, n={n}) gave {p}, want {uniform}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn single_spike_rows_are_one_hot() {
    // One score dominates by far more than any engine's resolution: the
    // winner must take (essentially) all the mass, and every engine must
    // put its argmax on the spike.
    for (_, format) in paper_points() {
        let spike = format.max_value() * 0.5;
        let floor = -format.max_value() * 0.5;
        for c in &mut contenders(format) {
            let name = c.engine.name().to_string();
            for spike_at in [0usize, 3, 15] {
                let mut row = vec![floor; 16];
                row[spike_at] = spike;
                let probs = c.engine.softmax_row(&row);
                assert_valid_distribution(&name, &row, &probs, c.sum_tol);
                assert_eq!(argmax(&probs), spike_at, "{name}: spike moved");
                assert!(
                    probs[spike_at] >= 0.95,
                    "{name}: winner got only {} of the mass",
                    probs[spike_at]
                );
                for (i, &p) in probs.iter().enumerate() {
                    if i != spike_at {
                        assert!(p <= 0.01, "{name}: loser {i} got {p}");
                    }
                }
            }
        }
    }
}

#[test]
fn max_negative_rows_saturate_gracefully() {
    // Scores far below the representable range clamp to the format
    // minimum. All-saturated rows become all-equal rows (uniform output);
    // one in-range score against a saturated floor is a spike.
    for (_, format) in paper_points() {
        for c in &mut contenders(format) {
            let name = c.engine.name().to_string();
            let row = vec![-1e4; 32];
            let probs = c.engine.softmax_row(&row);
            assert_valid_distribution(&name, &row, &probs, c.sum_tol);
            for &p in &probs {
                assert!((p - 1.0 / 32.0).abs() <= c.elem_bound.max(1e-4), "{name}: {p}");
            }

            let mut spiked = vec![-1e4; 32];
            spiked[17] = 0.0;
            let probs = c.engine.softmax_row(&spiked);
            assert_valid_distribution(&name, &spiked, &probs, c.sum_tol);
            assert_eq!(argmax(&probs), 17, "{name}: in-range score lost to saturated floor");
            assert!(probs[17] >= 0.95, "{name}: winner got {}", probs[17]);
        }
    }
}

#[test]
fn quantization_edge_rows_stay_bounded() {
    // Rows built from scores exactly *on* the 9-bit MRPC grid and exactly
    // *between* adjacent codes (the worst case for round-to-nearest).
    // On-grid rows quantize losslessly, so STAR's remaining error is just
    // the exp LUT + divider — an order of magnitude below the documented
    // random-row bound.
    let format = QFormat::MRPC;
    let res = format.resolution();
    let mut exact = ExactSoftmax::new();

    let on_grid: Vec<f64> = (-8..8).map(|k| k as f64 * res * 3.0).collect();
    let half_step: Vec<f64> = (-8..8).map(|k| k as f64 * res * 3.0 + res / 2.0).collect();

    for c in &mut contenders(format) {
        let name = c.engine.name().to_string();
        for row in [&on_grid, &half_step] {
            let reference = exact.softmax_row(row);
            let probs = c.engine.softmax_row(row);
            assert_valid_distribution(&name, row, &probs, c.sum_tol);
            let err = max_abs_err(&probs, &reference);
            eprintln!("[calibrate] edge/{name}: max|Δp| {err:.3e}");
            assert!(err <= c.elem_bound, "{name}: edge-row error {err:.3e} > {:.3e}", c.elem_bound);
            assert_eq!(argmax(&probs), argmax(&reference), "{name}: edge row moved the argmax");
        }
    }

    // The half-step scores sit exactly between codes; nearest-rounding
    // must move each by exactly res/2 and never more.
    for &s in &half_step {
        let q = Fixed::from_f64(s, format, Rounding::Nearest);
        assert!(
            (q.to_f64() - s).abs() <= res / 2.0 + 1e-12,
            "rounding moved {s} to {} (> half a step)",
            q.to_f64()
        );
    }
}

// ───────────────────────── CAM max-search vs scalar argmax ─────────────────────────

/// Scalar reference: the maximum of a fixed-point slice by raw code.
fn scalar_max(inputs: &[Fixed]) -> Fixed {
    *inputs.iter().max_by_key(|f| f.raw()).expect("non-empty")
}

#[test]
fn cam_max_search_agrees_with_scalar_argmax_exactly() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xCA4);
    for format in [QFormat::CNEWS, QFormat::MRPC, QFormat::COLA] {
        let mut cam =
            CamSubCrossbar::new(format, &TechnologyParams::cmos32(), NoiseModel::ideal(), &mut rng);
        let span = format.max_value();
        for len in [1usize, 2, 3, 17, 64, 128] {
            let inputs: Vec<Fixed> = (0..len)
                .map(|_| Fixed::from_f64(rng.gen_range(-span..span), format, Rounding::Nearest))
                .collect();
            let result = cam.find_max(&inputs).expect("search succeeds under ideal noise");
            let want = scalar_max(&inputs);
            assert_eq!(result.max.raw(), want.raw(), "{format:?}/len {len}: wrong max");
            assert_eq!(result.row, cam.row_of(want), "{format:?}/len {len}: wrong winning row");
            assert_eq!(
                cam.value_of(result.row).raw(),
                want.raw(),
                "{format:?}/len {len}: row does not read back to the max"
            );
            // Ideal noise: every input matched some row, and each matched
            // row reads back to exactly that input.
            for (input, row) in inputs.iter().zip(&result.per_input_rows) {
                let row = row.expect("ideal CAM always matches");
                assert_eq!(cam.value_of(row).raw(), input.raw(), "per-input row mismatch");
            }
        }
    }
}

#[test]
fn cam_max_search_handles_ties_and_extremes() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xCA5);
    let format = QFormat::MRPC;
    let mut cam =
        CamSubCrossbar::new(format, &TechnologyParams::cmos32(), NoiseModel::ideal(), &mut rng);

    // Duplicated maxima: the winning row is *the* row encoding that
    // value, so ties are resolved consistently by construction.
    let tied = vec![
        Fixed::from_f64(3.0, format, Rounding::Nearest),
        Fixed::from_f64(-2.0, format, Rounding::Nearest),
        Fixed::from_f64(3.0, format, Rounding::Nearest),
    ];
    let r = cam.find_max(&tied).expect("search");
    assert_eq!(r.max.raw(), tied[0].raw());
    assert_eq!(r.row, cam.row_of(tied[0]));

    // All-equal input, format extremes, single element.
    for value in [Fixed::max(format), Fixed::min(format), Fixed::zero(format)] {
        let all_equal = vec![value; 9];
        let r = cam.find_max(&all_equal).expect("search");
        assert_eq!(r.max.raw(), value.raw(), "all-equal at {value:?}");
        let single = vec![value];
        let r = cam.find_max(&single).expect("search");
        assert_eq!(r.max.raw(), value.raw(), "singleton at {value:?}");
    }
}
