//! Softermax (Stevens et al., DAC 2021) — the optimized CMOS comparison
//! point of Table I.
//!
//! Softermax's three tricks, all reproduced here:
//!
//! 1. **Base-2 softmax**: `2^x` instead of `e^x` (the `log₂e` factor is
//!    folded into the preceding scale), so exponentiation becomes a barrel
//!    shift by the integer part plus a tiny fraction LUT.
//! 2. **Online (running-max) normalization**: one pass computes the
//!    denominator while the max is still being discovered, rescaling the
//!    running sum by a shift whenever the max advances — possible because
//!    the running max is kept on the *integer* grid.
//! 3. **Low-precision fixed-point arithmetic** throughout.

use crate::engine::{fixed_divide, SoftmaxEngine};
use star_attention::RowSoftmax;
use star_crossbar::OpCost;
use star_device::peripherals::PeripheralLibrary;
use star_device::{CostSheet, Latency, TechnologyParams};
use star_fixed::{Fixed, QFormat, Rounding};

/// The Softermax softmax unit.
///
/// # Examples
///
/// ```
/// use star_attention::RowSoftmax;
/// use star_core::Softermax;
/// use star_fixed::QFormat;
///
/// let mut unit = Softermax::new(QFormat::CNEWS, 4);
/// let p = unit.softmax_row(&[1.0, 2.0, 3.0]);
/// assert!(p[2] > p[1] && p[1] > p[0]);
/// assert!((p.iter().sum::<f64>() - 1.0).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Softermax {
    format: QFormat,
    lanes: usize,
    /// Fraction LUT: `2^-r` for each fractional code `r`, in `exp2_bits`
    /// precision.
    frac_lut: Vec<u32>,
    exp2_bits: u8,
    quotient_bits: u8,
    tech: TechnologyParams,
    name: String,
}

impl Softermax {
    /// Width of the power-of-two codes (the paper's low-precision choice).
    const EXP2_BITS: u8 = 12;

    /// Creates a Softermax unit operating on the given input format with
    /// `lanes` parallel element pipelines.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(format: QFormat, lanes: usize) -> Self {
        assert!(lanes > 0, "lane count must be positive");
        let exp2_bits = Self::EXP2_BITS;
        let scale = (1u32 << exp2_bits) - 1;
        let entries = 1usize << format.frac_bits();
        let frac_lut = (0..entries)
            .map(|r| {
                let frac = r as f64 * format.resolution();
                ((-frac).exp2() * scale as f64).round() as u32
            })
            .collect();
        Softermax {
            format,
            lanes,
            frac_lut,
            exp2_bits,
            quotient_bits: 12,
            tech: TechnologyParams::cmos32(),
            name: format!("softermax-{}bit-x{lanes}", format.total_bits()),
        }
    }

    /// Number of parallel lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The input fixed-point format.
    pub fn input_format(&self) -> QFormat {
        self.format
    }

    /// `2^y` for a non-positive fixed-point exponent, as the hardware
    /// computes it: LUT on the fractional part, barrel shift by the
    /// integer part. Returns a code in `exp2_bits` precision.
    fn exp2_code(&self, y: Fixed) -> u64 {
        debug_assert!(y.to_f64() <= 0.0, "exp2 operand must be non-positive");
        let mag = y.magnitude_code(); // |y| in 2^-frac units
        let frac_mask = (1u64 << self.format.frac_bits()) - 1;
        let frac_idx = (mag & frac_mask) as usize;
        let int_shift = mag >> self.format.frac_bits();
        if int_shift >= self.exp2_bits as u64 {
            return 0; // shifted to extinction
        }
        u64::from(self.frac_lut[frac_idx]) >> int_shift
    }
}

impl RowSoftmax for Softermax {
    fn softmax_row(&mut self, scores: &[f64]) -> Vec<f64> {
        assert!(!scores.is_empty(), "softmax of an empty row is undefined");
        star_telemetry::count("softermax.softmax.rows", 1);
        // The online pass does one exp2 lookup + running-max update per
        // element; normalization recomputes each numerator and divides.
        star_telemetry::count("softermax.softmax.exp2_ops", 2 * scores.len() as u64);
        star_telemetry::count("softermax.softmax.div_ops", scores.len() as u64);
        // Fold ln→log₂ conversion into the input scale, then quantize.
        let log2e = std::f64::consts::LOG2_E;
        let xs: Vec<Fixed> = scores
            .iter()
            .map(|&s| Fixed::from_f64(s * log2e, self.format, Rounding::Nearest))
            .collect();

        // Online pass: integer-grid running max + running denominator.
        let mut m_int: i64 = i64::MIN; // running max, integer units
        let mut denom: u64 = 0;
        let frac_bits = self.format.frac_bits() as u32;
        for &x in &xs {
            // ceil(x) on the integer grid.
            let x_int = (x.raw() + ((1i64 << frac_bits) - 1)) >> frac_bits;
            if x_int > m_int {
                if m_int == i64::MIN {
                    denom = 0; // first element: nothing to rescale
                } else {
                    denom >>= (x_int - m_int).min(63) as u32;
                }
                m_int = x_int;
            }
            let y = Fixed::from_raw(x.raw() - (m_int << frac_bits), self.format);
            denom = denom.saturating_add(self.exp2_code(y));
        }
        let denom = denom.max(1);

        // Normalization pass (numerators recomputed, as in the pipelined
        // hardware).
        xs.iter()
            .map(|&x| {
                let y = Fixed::from_raw(x.raw() - (m_int << frac_bits), self.format);
                fixed_divide(self.exp2_code(y), denom, self.quotient_bits)
            })
            .collect()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl Softermax {
    /// One lane's component bundle, following the Softermax paper's
    /// microarchitecture: max comparator, fraction LUT, barrel shifter,
    /// piecewise-linear interpolation multiplier, running-denominator
    /// accumulator, output normalization multiplier, and the deep pipeline
    /// registers + control the design needs to sustain one element per
    /// cycle (the dominant area term in the original's breakdown).
    fn lane_blocks(&self) -> Vec<(String, star_device::BlockSpec)> {
        let b = self.format.total_bits();
        let entries = 1usize << self.format.frac_bits();
        vec![
            ("int comparator".into(), PeripheralLibrary::int_adder(b)),
            ("exp2 fraction lut".into(), PeripheralLibrary::register_lut(entries, self.exp2_bits)),
            ("barrel shifter".into(), PeripheralLibrary::shift_add(self.exp2_bits)),
            ("interp multiplier".into(), PeripheralLibrary::int_multiplier(self.exp2_bits)),
            ("norm multiplier".into(), PeripheralLibrary::int_multiplier(self.exp2_bits)),
            ("denominator accumulator".into(), PeripheralLibrary::int_adder(self.exp2_bits + 8)),
            ("pipeline regs + control".into(), PeripheralLibrary::pipeline_control(480)),
        ]
    }
}

impl SoftmaxEngine for Softermax {
    fn cost_sheet(&self) -> CostSheet {
        let mut sheet = CostSheet::new(self.name.clone());
        for (name, block) in self.lane_blocks() {
            sheet.add(
                format!("{name} x{}", self.lanes),
                block.area() * self.lanes as f64,
                block.average_power(1.0) * self.lanes as f64,
            );
        }
        let div = PeripheralLibrary::fixed_divider(self.exp2_bits);
        sheet.add("reciprocal divider", div.area(), div.average_power(1.0));
        // One low-precision ping-pong row buffer pair.
        let kib = (512 * self.format.total_bits() as usize) as f64 / 8.0 / 1024.0;
        let buf = PeripheralLibrary::sram(kib.max(0.25));
        sheet.add("row buffers x2", buf.area() * 2.0, buf.average_power(0.5) * 2.0);
        sheet
    }

    fn row_cost(&self, n: usize) -> OpCost {
        let cycles = n.div_ceil(self.lanes) as f64;
        let clock = self.tech.cmos_clock_ns();
        let per_elem: star_device::Energy =
            self.lane_blocks().iter().map(|(_, b)| b.energy_per_op()).sum();
        let div = PeripheralLibrary::fixed_divider(self.exp2_bits);
        let energy = per_elem * n as f64 + div.energy_for_ops(n as u64);
        // One online pass + one normalization pass.
        let latency = Latency::new(2.0 * cycles * clock + div.latency_per_op().value());
        OpCost::new(energy, latency)
    }

    fn format(&self) -> Option<QFormat> {
        Some(self.format)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_attention::ExactSoftmax;

    #[test]
    fn close_to_exact() {
        let mut soft = Softermax::new(QFormat::MRPC, 4);
        let mut exact = ExactSoftmax::new();
        let scores = [0.8, -1.1, 2.4, 0.05, 1.3];
        let p = soft.softmax_row(&scores);
        let q = exact.softmax_row(&scores);
        for (a, b) in p.iter().zip(&q) {
            assert!((a - b).abs() < 0.05, "softermax {a} vs exact {b}");
        }
    }

    #[test]
    fn ranking_preserved() {
        let mut soft = Softermax::new(QFormat::CNEWS, 4);
        let p = soft.softmax_row(&[3.0, 1.0, -2.0, 2.0]);
        assert!(p[0] > p[3] && p[3] > p[1] && p[1] > p[2]);
    }

    #[test]
    fn uniform_inputs() {
        let mut soft = Softermax::new(QFormat::CNEWS, 4);
        let p = soft.softmax_row(&[0.5; 8]);
        for &v in &p {
            assert!((v - 0.125).abs() < 0.01, "{v}");
        }
    }

    #[test]
    fn exp2_code_monotone() {
        let soft = Softermax::new(QFormat::MRPC, 1);
        let fmt = QFormat::MRPC;
        let mut prev = u64::MAX;
        for raw in (-64..=0).rev() {
            let code = soft.exp2_code(Fixed::from_raw(raw, fmt));
            assert!(code <= prev, "raw {raw}");
            prev = code;
        }
        assert_eq!(soft.exp2_code(Fixed::from_raw(0, fmt)), (1 << 12) - 1);
    }

    #[test]
    fn deep_negative_underflows_to_zero() {
        let soft = Softermax::new(QFormat::CNEWS, 1);
        let fmt = QFormat::CNEWS;
        assert_eq!(soft.exp2_code(Fixed::from_f64(-30.0, fmt, Rounding::Nearest)), 0);
    }

    #[test]
    fn cheaper_than_baseline_per_row() {
        use crate::CmosBaselineSoftmax;
        let soft = Softermax::new(QFormat::CNEWS, 8);
        let base = CmosBaselineSoftmax::new(8);
        assert!(soft.row_cost(128).energy.value() < base.row_cost(128).energy.value());
        assert!(soft.cost_sheet().total_area().value() < base.cost_sheet().total_area().value());
        assert!(soft.cost_sheet().total_power().value() < base.cost_sheet().total_power().value());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_lanes_rejected() {
        let _ = Softermax::new(QFormat::CNEWS, 0);
    }

    #[test]
    fn reports_format() {
        let soft = Softermax::new(QFormat::COLA, 2);
        assert_eq!(SoftmaxEngine::format(&soft), Some(QFormat::COLA));
        assert_eq!(soft.input_format(), QFormat::COLA);
        assert_eq!(soft.lanes(), 2);
    }
}
