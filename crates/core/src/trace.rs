//! Pipeline-semantics-aware trace export and utilization reporting.
//!
//! `star-telemetry` owns the Chrome trace-event *format*; this module owns
//! the mapping from [`simulate_pipeline`](crate::simulate_pipeline)
//! schedules onto it. Two products:
//!
//! - [`pipeline_chrome_trace`] — a Perfetto-loadable trace with one lane
//!   per pipeline resource (`QK`, one lane per softmax engine, `PV`) and
//!   one complete event per row per stage, so the Fig. 4 pipelining
//!   argument can be *seen* rather than inferred from a makespan number.
//! - [`UtilizationReport`] — per-stage busy/stall/occupancy with
//!   bottleneck attribution. By construction `busy + stall == makespan`
//!   exactly for every lane (stall is *defined* as the complement), which
//!   the a*/e* bench sidecars rely on as an internal-consistency check.

use crate::event_sim::{simulate_pipeline, RowDurations};
use crate::pipeline::PipelineMode;
use serde::{Deserialize, Serialize};
use star_telemetry::ChromeTrace;

/// Number of softmax lanes actually used by a mode: only the
/// vector-grained pipeline replicates the softmax engine.
fn effective_engines(mode: PipelineMode, softmax_engines: usize) -> usize {
    match mode {
        PipelineMode::VectorGrained => softmax_engines.max(1),
        _ => 1,
    }
}

/// Exports a pipeline schedule as Chrome trace-event JSON (load the output
/// of [`ChromeTrace::to_json_string`] in Perfetto / `chrome://tracing`).
///
/// Lane layout: pid 1 is the pipeline (named after `mode`); tid 1 is the
/// QKᵀ MatMul, tids 2..=1+k are the `k` softmax engines, and the last tid
/// is the PV MatMul. Each row contributes three `ph:"X"` events carrying
/// its row index in `args`.
///
/// # Panics
///
/// Panics if `durations` are inconsistent or `softmax_engines` is zero
/// (same contract as [`simulate_pipeline`]).
pub fn pipeline_chrome_trace(
    durations: &RowDurations,
    mode: PipelineMode,
    softmax_engines: usize,
) -> ChromeTrace {
    let sim = simulate_pipeline(durations, mode, softmax_engines);
    let engines = effective_engines(mode, softmax_engines);
    let pid = 1;
    let pv_tid = 1 + engines as u64 + 1;

    let mut trace = ChromeTrace::new();
    trace.name_process(pid, format!("attention pipeline ({mode:?})"));
    trace.name_thread(pid, 1, "QK matmul");
    for e in 0..engines {
        trace.name_thread(pid, 2 + e as u64, format!("softmax#{e}"));
    }
    trace.name_thread(pid, pv_tid, "PV matmul");

    for t in &sim.timelines {
        let row = t.row;
        let args = serde_json::json!({ "row": row });
        trace.complete_ns("qk", "matmul", t.qk_start, durations.qk[row], pid, 1, args.clone());
        let engine = match mode {
            PipelineMode::VectorGrained => row % engines,
            _ => 0,
        };
        trace.complete_ns(
            "softmax",
            "softmax",
            t.softmax_start,
            durations.softmax[row],
            pid,
            2 + engine as u64,
            args.clone(),
        );
        trace.complete_ns("pv", "matmul", t.av_start, durations.av[row], pid, pv_tid, args);
    }
    star_telemetry::count("pipeline.trace.exports", 1);
    trace
}

/// Busy/stall accounting for one pipeline resource.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageUtilization {
    /// Lane name (`"qk"`, `"softmax#0"`, …, `"pv"`).
    pub name: String,
    /// Time (ns) the resource spent executing stage work.
    pub busy_ns: f64,
    /// Complement of busy over the makespan: `makespan − busy`, so
    /// `busy_ns + stall_ns` equals the makespan exactly.
    pub stall_ns: f64,
    /// `busy / makespan` (0 when the makespan is zero).
    pub occupancy: f64,
}

/// Per-stage utilization of one pipeline run, with bottleneck attribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationReport {
    /// The pipeline mode simulated.
    pub mode: PipelineMode,
    /// End-to-end makespan in ns.
    pub makespan_ns: f64,
    /// One entry per resource lane (QK, each softmax engine, PV).
    pub stages: Vec<StageUtilization>,
    /// Name of the highest-occupancy lane — the stage that bounds
    /// throughput.
    pub bottleneck: String,
}

impl UtilizationReport {
    /// Runs the event simulator and folds its timelines into a report.
    ///
    /// # Panics
    ///
    /// Same contract as [`simulate_pipeline`].
    pub fn from_durations(
        durations: &RowDurations,
        mode: PipelineMode,
        softmax_engines: usize,
    ) -> Self {
        let sim = simulate_pipeline(durations, mode, softmax_engines);
        let engines = effective_engines(mode, softmax_engines);
        let makespan = sim.makespan.value();

        let qk_busy: f64 = durations.qk.iter().sum();
        let av_busy: f64 = durations.av.iter().sum();
        let mut engine_busy = vec![0.0f64; engines];
        for (row, &ds) in durations.softmax.iter().enumerate() {
            let engine = match mode {
                PipelineMode::VectorGrained => row % engines,
                _ => 0,
            };
            engine_busy[engine] += ds;
        }

        let lane = |name: String, busy: f64| {
            let occupancy = if makespan == 0.0 { 0.0 } else { busy / makespan };
            StageUtilization { name, busy_ns: busy, stall_ns: makespan - busy, occupancy }
        };
        let mut stages = Vec::with_capacity(engines + 2);
        stages.push(lane("qk".to_string(), qk_busy));
        for (e, &busy) in engine_busy.iter().enumerate() {
            stages.push(lane(format!("softmax#{e}"), busy));
        }
        stages.push(lane("pv".to_string(), av_busy));

        let bottleneck = stages
            .iter()
            .max_by(|a, b| a.occupancy.total_cmp(&b.occupancy))
            .map(|s| s.name.clone())
            .unwrap_or_default();

        let softmax_stall: f64 =
            stages.iter().filter(|s| s.name.starts_with("softmax")).map(|s| s.stall_ns).sum();
        star_telemetry::add("pipeline.softmax.stall_ns", softmax_stall);
        star_telemetry::add("pipeline.makespan_ns", makespan);

        UtilizationReport { mode, makespan_ns: makespan, stages, bottleneck }
    }

    /// The lane with the given name, if present.
    pub fn stage(&self, name: &str) -> Option<&StageUtilization> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Renders a small aligned table (one line per lane).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "pipeline {:?}: makespan {:.3} ns, bottleneck {}\n",
            self.mode, self.makespan_ns, self.bottleneck
        ));
        let width = self.stages.iter().map(|s| s.name.len()).max().unwrap_or(0);
        for s in &self.stages {
            out.push_str(&format!(
                "  {:width$}  busy {:>12.3} ns  stall {:>12.3} ns  occupancy {:>6.1}%\n",
                s.name,
                s.busy_ns,
                s.stall_ns,
                s.occupancy * 100.0,
                width = width,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RowDurations {
        RowDurations::uniform(16, 10.0, 40.0, 12.0)
    }

    #[test]
    fn trace_has_three_events_per_row_plus_metadata() {
        let d = sample();
        let trace = pipeline_chrome_trace(&d, PipelineMode::VectorGrained, 2);
        // 1 process-name + 4 thread-name metadata events, 3 X-events/row.
        assert_eq!(trace.len(), 16 * 3);
        let json = trace.to_json_string();
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("softmax#1"));
        assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
    }

    #[test]
    fn trace_timestamps_are_microseconds() {
        // One row, qk 1000 ns: the complete event must carry ts 0 / dur 1 µs.
        let d = RowDurations::uniform(1, 1000.0, 500.0, 250.0);
        let trace = pipeline_chrome_trace(&d, PipelineMode::Unpipelined, 1);
        let json = trace.to_json_string();
        assert!(json.contains("\"dur\":1.0") || json.contains("\"dur\":1"), "{json}");
    }

    #[test]
    fn busy_plus_stall_is_makespan_every_mode() {
        let d = sample();
        for mode in PipelineMode::ALL {
            for engines in [1usize, 2, 4] {
                let report = UtilizationReport::from_durations(&d, mode, engines);
                for s in &report.stages {
                    assert!(
                        (s.busy_ns + s.stall_ns - report.makespan_ns).abs() < 1e-9,
                        "{mode:?} lane {}: {} + {} != {}",
                        s.name,
                        s.busy_ns,
                        s.stall_ns,
                        report.makespan_ns
                    );
                }
            }
        }
    }

    #[test]
    fn softmax_bound_pipeline_blames_softmax() {
        let d = RowDurations::uniform(64, 10.0, 80.0, 10.0);
        let report = UtilizationReport::from_durations(&d, PipelineMode::VectorGrained, 1);
        assert_eq!(report.bottleneck, "softmax#0");
        let sm = report.stage("softmax#0").unwrap();
        assert!(sm.occupancy > 0.9, "{}", sm.occupancy);
        // Replication moves the bottleneck back to the matmuls.
        let wide = UtilizationReport::from_durations(&d, PipelineMode::VectorGrained, 8);
        assert_ne!(wide.bottleneck, "softmax#0");
        assert_eq!(wide.stages.len(), 8 + 2);
    }

    #[test]
    fn non_vector_modes_use_one_softmax_lane() {
        let d = sample();
        for mode in [PipelineMode::Unpipelined, PipelineMode::OperandGrained] {
            let report = UtilizationReport::from_durations(&d, mode, 4);
            assert_eq!(report.stages.len(), 3, "{mode:?}");
            let sm = report.stage("softmax#0").unwrap();
            assert!((sm.busy_ns - 16.0 * 40.0).abs() < 1e-9);
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let d = sample();
        let report = UtilizationReport::from_durations(&d, PipelineMode::OperandGrained, 1);
        let json = serde_json::to_string(&report).unwrap();
        let back: UtilizationReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn table_mentions_every_lane() {
        let d = sample();
        let report = UtilizationReport::from_durations(&d, PipelineMode::VectorGrained, 2);
        let table = report.to_table();
        for lane in ["qk", "softmax#0", "softmax#1", "pv"] {
            assert!(table.contains(lane), "missing {lane} in:\n{table}");
        }
    }
}
