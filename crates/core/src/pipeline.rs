//! The vector-grained global pipeline (§II, last paragraph).
//!
//! Attention is a three-stage dataflow per score row: `QKᵀ` (MatMul
//! engine) → softmax → `·V` (MatMul engine). What distinguishes the
//! accelerators is *how rows overlap*:
//!
//! - **Unpipelined** — every stage of every row strictly sequential.
//! - **Operand-grained** (prior RRAM accelerators): the crossbar MatMul
//!   stages stream and overlap, but softmax executes on a shared digital
//!   unit that blocks the flow — its time adds serially for every row.
//!   This is the paper's observation that "the softmax still runs on the
//!   same circuits".
//! - **Vector-grained** (STAR): the dedicated crossbar softmax engine is a
//!   true pipeline stage, so a row can be softmaxed while the next row's
//!   scores are produced and the previous row's context is accumulated;
//!   steady-state throughput is set by the slowest single stage.

use serde::{Deserialize, Serialize};
use star_device::Latency;

/// Per-row latencies of the three attention stages.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RowStageLatency {
    /// One row of `QKᵀ` on the MatMul engine.
    pub qk: Latency,
    /// One row of softmax.
    pub softmax: Latency,
    /// One row of `P·V` on the MatMul engine.
    pub av: Latency,
}

impl RowStageLatency {
    /// Creates the stage latencies.
    pub fn new(qk: Latency, softmax: Latency, av: Latency) -> Self {
        RowStageLatency { qk, softmax, av }
    }

    /// Sum of all three stages (one row, no overlap).
    pub fn serial(&self) -> Latency {
        self.qk + self.softmax + self.av
    }

    /// The slowest stage.
    pub fn bottleneck(&self) -> Latency {
        Latency::new(self.qk.value().max(self.softmax.value()).max(self.av.value()))
    }

    /// The slowest MatMul stage (the steady-state rate when softmax is not
    /// a pipeline stage).
    fn matmul_bottleneck(&self) -> Latency {
        Latency::new(self.qk.value().max(self.av.value()))
    }
}

/// Row-overlap discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PipelineMode {
    /// No overlap at all.
    Unpipelined,
    /// MatMul stages pipeline; softmax serializes (prior work).
    OperandGrained,
    /// All three stages pipeline at row granularity (STAR).
    VectorGrained,
}

impl PipelineMode {
    /// All modes, for sweeps.
    pub const ALL: [PipelineMode; 3] =
        [PipelineMode::Unpipelined, PipelineMode::OperandGrained, PipelineMode::VectorGrained];
}

/// Total latency to push `rows` score rows through the attention dataflow
/// under a pipeline mode.
///
/// # Panics
///
/// Panics if `rows` is zero.
///
/// # Examples
///
/// ```
/// use star_core::{attention_pipeline_latency, PipelineMode, RowStageLatency};
/// use star_device::Latency;
///
/// let stages = RowStageLatency::new(Latency::new(100.0), Latency::new(80.0), Latency::new(100.0));
/// let flat = attention_pipeline_latency(128, stages, PipelineMode::Unpipelined);
/// let star = attention_pipeline_latency(128, stages, PipelineMode::VectorGrained);
/// assert!(star < flat);
/// ```
pub fn attention_pipeline_latency(
    rows: usize,
    stages: RowStageLatency,
    mode: PipelineMode,
) -> Latency {
    assert!(rows > 0, "pipeline needs at least one row");
    let n = rows as f64;
    match mode {
        PipelineMode::Unpipelined => stages.serial() * n,
        PipelineMode::OperandGrained => {
            // Fill the two matmul stages once, stream at the matmul
            // bottleneck, and pay softmax serially for every row.
            stages.qk + stages.av + stages.matmul_bottleneck() * (n - 1.0) + stages.softmax * n
        }
        PipelineMode::VectorGrained => stages.serial() + stages.bottleneck() * (n - 1.0),
    }
}

/// Latency of every mode side by side, plus the speedups over the
/// unpipelined baseline — the A1 ablation's raw numbers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Number of rows pushed through.
    pub rows: usize,
    /// Per-row stage latencies.
    pub stages: RowStageLatency,
    /// Unpipelined total.
    pub unpipelined: Latency,
    /// Operand-grained total.
    pub operand_grained: Latency,
    /// Vector-grained total.
    pub vector_grained: Latency,
}

impl PipelineReport {
    /// Evaluates all modes.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is zero.
    pub fn evaluate(rows: usize, stages: RowStageLatency) -> Self {
        PipelineReport {
            rows,
            stages,
            unpipelined: attention_pipeline_latency(rows, stages, PipelineMode::Unpipelined),
            operand_grained: attention_pipeline_latency(rows, stages, PipelineMode::OperandGrained),
            vector_grained: attention_pipeline_latency(rows, stages, PipelineMode::VectorGrained),
        }
    }

    /// Speedup of vector-grained over operand-grained pipelining.
    pub fn vector_speedup(&self) -> f64 {
        self.operand_grained.value() / self.vector_grained.value()
    }

    /// Speedup of vector-grained over no pipelining.
    pub fn total_speedup(&self) -> f64 {
        self.unpipelined.value() / self.vector_grained.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stages(qk: f64, sm: f64, av: f64) -> RowStageLatency {
        RowStageLatency::new(Latency::new(qk), Latency::new(sm), Latency::new(av))
    }

    #[test]
    fn single_row_all_modes_equal_serial() {
        let s = stages(10.0, 20.0, 15.0);
        for mode in PipelineMode::ALL {
            let l = attention_pipeline_latency(1, s, mode);
            assert_eq!(l.value(), 45.0, "{mode:?}");
        }
    }

    #[test]
    fn ordering_unpipelined_ge_operand_ge_vector() {
        let s = stages(100.0, 80.0, 100.0);
        for n in [2usize, 16, 128, 512] {
            let r = PipelineReport::evaluate(n, s);
            assert!(r.unpipelined >= r.operand_grained, "n={n}");
            assert!(r.operand_grained >= r.vector_grained, "n={n}");
        }
    }

    #[test]
    fn vector_grained_is_bottleneck_bound() {
        let s = stages(100.0, 80.0, 90.0);
        let n = 1000;
        let l = attention_pipeline_latency(n, s, PipelineMode::VectorGrained);
        // ≈ n · bottleneck for large n.
        let per_row = l.value() / n as f64;
        assert!((per_row - 100.0).abs() < 1.0, "{per_row}");
    }

    #[test]
    fn operand_grained_pays_softmax_serially() {
        let s = stages(100.0, 80.0, 100.0);
        let n = 1000;
        let l = attention_pipeline_latency(n, s, PipelineMode::OperandGrained);
        let per_row = l.value() / n as f64;
        // ≈ matmul bottleneck + softmax per row.
        assert!((per_row - 180.0).abs() < 1.0, "{per_row}");
    }

    #[test]
    fn speedups_above_one_when_softmax_matters() {
        let r = PipelineReport::evaluate(128, stages(100.0, 80.0, 100.0));
        assert!(r.vector_speedup() > 1.5);
        assert!(r.total_speedup() > 2.0);
    }

    #[test]
    fn zero_cost_softmax_makes_modes_converge() {
        let s = stages(100.0, 0.0, 100.0);
        let op = attention_pipeline_latency(512, s, PipelineMode::OperandGrained);
        let vec = attention_pipeline_latency(512, s, PipelineMode::VectorGrained);
        assert!((op.value() - vec.value()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn zero_rows_panics() {
        let _ = attention_pipeline_latency(0, stages(1.0, 1.0, 1.0), PipelineMode::VectorGrained);
    }

    #[test]
    fn serial_and_bottleneck() {
        let s = stages(3.0, 7.0, 5.0);
        assert_eq!(s.serial().value(), 15.0);
        assert_eq!(s.bottleneck().value(), 7.0);
    }
}
