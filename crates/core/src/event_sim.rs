//! Event-driven simulation of the attention row pipeline.
//!
//! [`attention_pipeline_latency`](crate::attention_pipeline_latency) is a
//! closed-form model; this module simulates the same dataflow row by row
//! — resources, occupancy, blocking — and produces per-row timelines. The
//! two agree exactly for uniform stage times (a property test enforces
//! it), and the simulator additionally handles what the formula cannot:
//! per-row varying stage latencies (e.g. softmax rows that saturate
//! early-exit paths) and replicated softmax engines.

use crate::pipeline::PipelineMode;
use serde::{Deserialize, Serialize};
use star_device::Latency;

/// One row's journey through the three stages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RowTimeline {
    /// Row index.
    pub row: usize,
    /// QKᵀ stage start time (ns).
    pub qk_start: f64,
    /// Softmax stage start time.
    pub softmax_start: f64,
    /// PV stage start time.
    pub av_start: f64,
    /// Completion time.
    pub finish: f64,
}

/// Per-row stage durations (allows non-uniform rows).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowDurations {
    /// QKᵀ durations per row (ns).
    pub qk: Vec<f64>,
    /// Softmax durations per row.
    pub softmax: Vec<f64>,
    /// PV durations per row.
    pub av: Vec<f64>,
}

impl RowDurations {
    /// Uniform durations for `rows` rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is zero or any duration is negative/non-finite.
    pub fn uniform(rows: usize, qk: f64, softmax: f64, av: f64) -> Self {
        assert!(rows > 0, "need at least one row");
        for d in [qk, softmax, av] {
            assert!(d.is_finite() && d >= 0.0, "durations must be finite and non-negative");
        }
        RowDurations { qk: vec![qk; rows], softmax: vec![softmax; rows], av: vec![av; rows] }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.qk.len()
    }

    fn validate(&self) {
        assert!(!self.qk.is_empty(), "need at least one row");
        assert_eq!(self.qk.len(), self.softmax.len(), "stage vectors must agree");
        assert_eq!(self.qk.len(), self.av.len(), "stage vectors must agree");
    }
}

/// Result of an event-driven pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Per-row timelines.
    pub timelines: Vec<RowTimeline>,
    /// Total makespan.
    pub makespan: Latency,
    /// Total time the softmax resource spent busy.
    pub softmax_busy: Latency,
}

impl SimResult {
    /// Softmax resource utilization over the makespan.
    pub fn softmax_utilization(&self) -> f64 {
        if self.makespan.value() == 0.0 {
            0.0
        } else {
            self.softmax_busy.value() / self.makespan.value()
        }
    }
}

/// Simulates `rows` score rows through `QKᵀ → softmax → PV` under a
/// pipeline mode, with `softmax_engines` interchangeable softmax resources
/// (round-robin; >1 only meaningful for vector-grained scheduling).
///
/// Resource semantics per mode:
/// - `Unpipelined`: one row finishes entirely before the next starts.
/// - `OperandGrained`: the two MatMul stages each own a resource and
///   stream, but the softmax unit blocks the whole flow — no new QKᵀ row
///   may start while a softmax is in flight.
/// - `VectorGrained`: three independent stage resources; softmax may be
///   replicated.
///
/// # Panics
///
/// Panics if durations are inconsistent or `softmax_engines` is zero.
pub fn simulate_pipeline(
    durations: &RowDurations,
    mode: PipelineMode,
    softmax_engines: usize,
) -> SimResult {
    durations.validate();
    assert!(softmax_engines > 0, "need at least one softmax engine");
    let n = durations.rows();
    let mut timelines = Vec::with_capacity(n);
    let mut softmax_busy = 0.0;

    // Resource availability times.
    let mut qk_free = 0.0f64;
    let mut av_free = 0.0f64;
    let mut engines_free = vec![0.0f64; softmax_engines];
    let mut serial_free = 0.0f64; // unpipelined / blocking cursor

    for row in 0..n {
        let (dq, ds, da) = (durations.qk[row], durations.softmax[row], durations.av[row]);
        let (qk_start, softmax_start, av_start, finish) = match mode {
            PipelineMode::Unpipelined => {
                let qs = serial_free;
                let ss = qs + dq;
                let as_ = ss + ds;
                serial_free = as_ + da;
                (qs, ss, as_, serial_free)
            }
            PipelineMode::OperandGrained => {
                // The shared digital softmax unit stops the world: no
                // matmul stage runs while a softmax is in flight, so a
                // softmax may only start once the previous row's PV has
                // drained, and the next row's QKᵀ only after the softmax.
                let qs = qk_free.max(serial_free);
                let qe = qs + dq;
                qk_free = qe;
                let ss = qe.max(av_free);
                let se = ss + ds;
                serial_free = se; // blocks subsequent rows
                softmax_busy += ds;
                let as_ = se.max(av_free);
                let ae = as_ + da;
                av_free = ae;
                (qs, ss, as_, ae)
            }
            PipelineMode::VectorGrained => {
                let qs = qk_free;
                let qe = qs + dq;
                qk_free = qe;
                let engine = row % softmax_engines;
                let ss = qe.max(engines_free[engine]);
                let se = ss + ds;
                engines_free[engine] = se;
                softmax_busy += ds;
                let as_ = se.max(av_free);
                let ae = as_ + da;
                av_free = ae;
                (qs, ss, as_, ae)
            }
        };
        if mode == PipelineMode::Unpipelined {
            softmax_busy += ds;
        }
        timelines.push(RowTimeline { row, qk_start, softmax_start, av_start, finish });
    }

    let makespan = timelines.iter().map(|t| t.finish).fold(0.0, f64::max);
    SimResult {
        timelines,
        makespan: Latency::new(makespan),
        softmax_busy: Latency::new(softmax_busy),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{attention_pipeline_latency, RowStageLatency};

    fn formula(rows: usize, qk: f64, sm: f64, av: f64, mode: PipelineMode) -> f64 {
        let stages = RowStageLatency::new(Latency::new(qk), Latency::new(sm), Latency::new(av));
        attention_pipeline_latency(rows, stages, mode).value()
    }

    #[test]
    fn matches_formula_unpipelined() {
        let d = RowDurations::uniform(17, 10.0, 25.0, 15.0);
        let sim = simulate_pipeline(&d, PipelineMode::Unpipelined, 1);
        assert!(
            (sim.makespan.value() - formula(17, 10.0, 25.0, 15.0, PipelineMode::Unpipelined)).abs()
                < 1e-9
        );
    }

    #[test]
    fn matches_formula_vector_grained() {
        for (qk, sm, av) in [(10.0, 25.0, 15.0), (30.0, 5.0, 30.0), (7.0, 7.0, 7.0)] {
            let d = RowDurations::uniform(64, qk, sm, av);
            let sim = simulate_pipeline(&d, PipelineMode::VectorGrained, 1);
            let f = formula(64, qk, sm, av, PipelineMode::VectorGrained);
            assert!(
                (sim.makespan.value() - f).abs() < 1e-9,
                "({qk},{sm},{av}): sim {} vs {f}",
                sim.makespan
            );
        }
    }

    #[test]
    fn matches_formula_operand_grained() {
        for (qk, sm, av) in [(10.0, 25.0, 15.0), (30.0, 5.0, 30.0)] {
            let d = RowDurations::uniform(64, qk, sm, av);
            let sim = simulate_pipeline(&d, PipelineMode::OperandGrained, 1);
            let f = formula(64, qk, sm, av, PipelineMode::OperandGrained);
            // The formula is the steady-state approximation; the simulator
            // may differ by at most one pipeline fill term.
            let slack = qk + sm + av;
            assert!(
                (sim.makespan.value() - f).abs() <= slack,
                "sim {} vs formula {}",
                sim.makespan,
                f
            );
        }
    }

    #[test]
    fn replicated_engines_remove_softmax_bottleneck() {
        // Softmax 8× slower than matmul: one engine throttles the pipeline,
        // eight restore matmul-bound throughput.
        let d = RowDurations::uniform(128, 10.0, 80.0, 10.0);
        let one = simulate_pipeline(&d, PipelineMode::VectorGrained, 1);
        let eight = simulate_pipeline(&d, PipelineMode::VectorGrained, 8);
        assert!(one.makespan.value() > 128.0 * 80.0 * 0.95);
        assert!(eight.makespan.value() < 128.0 * 10.0 * 1.5 + 200.0, "{}", eight.makespan);
        assert!(eight.makespan < one.makespan);
    }

    #[test]
    fn timelines_are_causal_and_ordered() {
        let d = RowDurations::uniform(16, 5.0, 9.0, 7.0);
        for mode in PipelineMode::ALL {
            let sim = simulate_pipeline(&d, mode, 2);
            for t in &sim.timelines {
                assert!(t.qk_start <= t.softmax_start, "{mode:?}");
                assert!(t.softmax_start <= t.av_start, "{mode:?}");
                assert!(t.av_start < t.finish, "{mode:?}");
            }
            // Rows finish in order within each mode (FIFO stages).
            for w in sim.timelines.windows(2) {
                assert!(w[0].finish <= w[1].finish, "{mode:?}");
            }
        }
    }

    #[test]
    fn non_uniform_rows_supported() {
        let mut d = RowDurations::uniform(8, 10.0, 10.0, 10.0);
        d.softmax[3] = 100.0; // one slow row
        let sim = simulate_pipeline(&d, PipelineMode::VectorGrained, 1);
        let uniform = simulate_pipeline(
            &RowDurations::uniform(8, 10.0, 10.0, 10.0),
            PipelineMode::VectorGrained,
            1,
        );
        assert!(sim.makespan > uniform.makespan);
        assert!((sim.softmax_busy.value() - (7.0 * 10.0 + 100.0)).abs() < 1e-9);
    }

    #[test]
    fn utilization_fraction() {
        let d = RowDurations::uniform(32, 20.0, 10.0, 20.0);
        let sim = simulate_pipeline(&d, PipelineMode::VectorGrained, 1);
        let u = sim.softmax_utilization();
        assert!(u > 0.0 && u < 1.0, "{u}");
    }

    #[test]
    #[should_panic(expected = "stage vectors must agree")]
    fn ragged_durations_rejected() {
        let d = RowDurations { qk: vec![1.0, 2.0], softmax: vec![1.0], av: vec![1.0, 2.0] };
        let _ = simulate_pipeline(&d, PipelineMode::VectorGrained, 1);
    }
}
