//! Controller-level schedule of the STAR softmax engine.
//!
//! [`StarSoftmax::row_cost`](crate::StarSoftmax::row_cost) is an aggregate;
//! this module expands it into the cycle-level operation sequence the
//! engine controller issues for one score row, so the aggregate can be
//! audited op by op (a test asserts the expansion sums exactly to
//! `row_cost`) and the per-phase time breakdown can be inspected.

use crate::star::StarSoftmax;
use serde::{Deserialize, Serialize};
use star_crossbar::OpCost;

/// The engine phases a row passes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EnginePhase {
    /// CAM search of one input against the value table.
    MaxSearch,
    /// OR-merge + priority encode after all searches.
    MaxMerge,
    /// Analog subtraction of one input against `x_max`.
    Subtract,
    /// Exponential-stage CAM search + LUT read + counter increment.
    ExpLookup,
    /// One-shot histogram × exp-table VMM.
    Sum,
    /// Fixed-point divisions (pipelined).
    Divide,
}

/// One scheduled operation: a phase, how many back-to-back instances, and
/// their combined cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledOp {
    /// The phase.
    pub phase: EnginePhase,
    /// Number of consecutive instances (e.g. `n` searches).
    pub count: u64,
    /// Combined energy/latency of all instances.
    pub cost: OpCost,
}

/// The full schedule of one row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RowSchedule {
    /// Row length.
    pub n: usize,
    /// Operations in issue order.
    pub ops: Vec<ScheduledOp>,
}

impl RowSchedule {
    /// Expands the controller schedule for a row of `n` scores on the
    /// given engine.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn expand(engine: &StarSoftmax, n: usize) -> Self {
        assert!(n > 0, "schedule needs at least one element");
        let cam_sub = engine.cam_sub_costs();
        let ops = vec![
            ScheduledOp {
                phase: EnginePhase::MaxSearch,
                count: n as u64,
                cost: cam_sub.0.repeat(n as u64),
            },
            ScheduledOp { phase: EnginePhase::MaxMerge, count: 1, cost: cam_sub.1 },
            ScheduledOp {
                phase: EnginePhase::Subtract,
                count: n as u64,
                cost: cam_sub.2.repeat(n as u64),
            },
            ScheduledOp {
                phase: EnginePhase::ExpLookup,
                count: n as u64,
                cost: engine.exp_element_cost().repeat(n as u64),
            },
            ScheduledOp { phase: EnginePhase::Sum, count: 1, cost: engine.sum_cost() },
            ScheduledOp {
                phase: EnginePhase::Divide,
                count: n as u64,
                cost: engine.divide_cost(n),
            },
        ];
        RowSchedule { n, ops }
    }

    /// Total cost of the schedule.
    pub fn total(&self) -> OpCost {
        self.ops.iter().map(|op| op.cost).sum()
    }

    /// The phase with the largest latency share.
    pub fn dominant_phase(&self) -> EnginePhase {
        self.ops
            .iter()
            .max_by(|a, b| {
                a.cost.latency.value().partial_cmp(&b.cost.latency.value()).expect("finite")
            })
            .expect("non-empty")
            .phase
    }

    /// Latency fraction of one phase.
    pub fn phase_share(&self, phase: EnginePhase) -> f64 {
        let total = self.total().latency.value();
        let part: f64 =
            self.ops.iter().filter(|op| op.phase == phase).map(|op| op.cost.latency.value()).sum();
        if total == 0.0 {
            0.0
        } else {
            part / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SoftmaxEngine;
    use crate::star::StarSoftmaxConfig;
    use star_fixed::QFormat;

    fn engine() -> StarSoftmax {
        StarSoftmax::new(StarSoftmaxConfig::new(QFormat::MRPC)).expect("engine")
    }

    #[test]
    fn schedule_sums_to_row_cost() {
        let e = engine();
        for n in [1usize, 7, 64, 128, 512] {
            let schedule = RowSchedule::expand(&e, n);
            let total = schedule.total();
            let model = e.row_cost(n);
            assert!(
                (total.energy.value() - model.energy.value()).abs() < 1e-6,
                "n={n}: {} vs {}",
                total.energy,
                model.energy
            );
            assert!(
                (total.latency.value() - model.latency.value()).abs() < 1e-6,
                "n={n}: {} vs {}",
                total.latency,
                model.latency
            );
        }
    }

    #[test]
    fn counts_match_row_length() {
        let e = engine();
        let s = RowSchedule::expand(&e, 128);
        assert_eq!(s.ops.len(), 6);
        assert_eq!(s.ops[0].count, 128); // searches
        assert_eq!(s.ops[1].count, 1); // merge
        assert_eq!(s.ops[2].count, 128); // subtractions
        assert_eq!(s.ops[3].count, 128); // exp lookups
        assert_eq!(s.ops[4].count, 1); // sum
        assert_eq!(s.ops[5].count, 128); // divisions
    }

    #[test]
    fn element_phases_dominate_long_rows() {
        let e = engine();
        let s = RowSchedule::expand(&e, 512);
        let dom = s.dominant_phase();
        assert!(
            matches!(
                dom,
                EnginePhase::MaxSearch
                    | EnginePhase::Subtract
                    | EnginePhase::ExpLookup
                    | EnginePhase::Divide
            ),
            "{dom:?}"
        );
        // The one-shot phases are a vanishing fraction.
        assert!(s.phase_share(EnginePhase::Sum) < 0.2);
        assert!(s.phase_share(EnginePhase::MaxMerge) < 0.05);
        // Shares sum to 1.
        let sum: f64 = [
            EnginePhase::MaxSearch,
            EnginePhase::MaxMerge,
            EnginePhase::Subtract,
            EnginePhase::ExpLookup,
            EnginePhase::Sum,
            EnginePhase::Divide,
        ]
        .iter()
        .map(|&p| s.phase_share(p))
        .sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn empty_schedule_rejected() {
        let e = engine();
        let _ = RowSchedule::expand(&e, 0);
    }
}
