//! Generalizing the exponential stage: a CAM + LUT crossbar pair can
//! evaluate *any* scalar function over a fixed-point domain, not just
//! `exp`. This module packages that machinery as [`LutFunctionUnit`] —
//! the natural extension of the paper's design to the other transformer
//! non-linearities (GELU, sigmoid, tanh, reciprocal, √x …), with the same
//! cost structure as the softmax engine's exponential stage.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use star_crossbar::{CamCrossbar, Geometry, LutCrossbar, OpCost};
use star_device::{CostSheet, NoiseModel, TechnologyParams};
use star_fixed::{Fixed, QFormat, Rounding};
use std::fmt;

/// A crossbar lookup evaluator for a scalar function `f` over a signed
/// fixed-point input domain.
///
/// Construction samples `f` at every representable input code and programs
/// a CAM (input patterns, two's complement) and a LUT (quantized outputs);
/// evaluation is one search + one row read, exactly like the softmax
/// engine's exponential stage.
///
/// # Examples
///
/// ```
/// use star_core::LutFunctionUnit;
/// use star_fixed::QFormat;
///
/// // A GELU unit over q3.4 inputs, 16-bit outputs in [-1, 8).
/// let fmt = QFormat::new(3, 4)?;
/// let mut gelu = LutFunctionUnit::new(
///     "gelu", fmt, star_attention::gelu, (-1.0, 8.0), 16,
/// );
/// let y = gelu.evaluate(1.0);
/// assert!((y - star_attention::gelu(1.0)).abs() < 0.01);
/// # Ok::<(), star_fixed::FormatError>(())
/// ```
pub struct LutFunctionUnit {
    name: String,
    format: QFormat,
    cam: CamCrossbar,
    lut: LutCrossbar,
    /// Output codes per input row (row = max_raw − raw, descending).
    codes: Vec<u64>,
    out_min: f64,
    out_max: f64,
    out_bits: u8,
    tech: TechnologyParams,
    fault_events: u64,
}

impl fmt::Debug for LutFunctionUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LutFunctionUnit")
            .field("name", &self.name)
            .field("format", &self.format)
            .field("out_bits", &self.out_bits)
            .field("out_range", &(self.out_min, self.out_max))
            .finish()
    }
}

impl LutFunctionUnit {
    /// Builds a unit for `f` over the full input format domain, quantizing
    /// outputs to `out_bits` codes spanning `out_range` (outputs outside
    /// the range saturate).
    ///
    /// # Panics
    ///
    /// Panics if `out_bits` is not in `1..=32`, the range is empty, or `f`
    /// returns non-finite values on the domain.
    pub fn new(
        name: &str,
        format: QFormat,
        f: impl Fn(f64) -> f64,
        out_range: (f64, f64),
        out_bits: u8,
    ) -> Self {
        assert!((1..=32).contains(&out_bits), "output width must be in 1..=32 bits");
        let (out_min, out_max) = out_range;
        assert!(out_max > out_min, "output range must be non-empty");
        let tech = TechnologyParams::cmos32();
        let mut rng = ChaCha8Rng::seed_from_u64(0xF0);
        let rows = format.num_codes() as usize;
        let word_bits = format.total_bits() as usize;
        let mut cam = CamCrossbar::new(rows, word_bits, &tech, NoiseModel::ideal(), &mut rng);
        let mut lut =
            LutCrossbar::new(rows, out_bits as usize, &tech, NoiseModel::ideal(), &mut rng);
        let scale = ((1u64 << out_bits) - 1) as f64;
        let mut codes = Vec::with_capacity(rows);
        for row in 0..rows {
            let raw = format.max_raw() - row as i64;
            let x = Fixed::from_raw(raw, format);
            let bits = star_fixed::encoding::to_twos_complement(x);
            cam.store_row(row, &bits);
            let y = f(x.to_f64());
            assert!(y.is_finite(), "function returned non-finite output at {x}");
            let code =
                (((y - out_min) / (out_max - out_min)).clamp(0.0, 1.0) * scale).round() as u64;
            lut.store_word(row, code);
            codes.push(code);
        }
        LutFunctionUnit {
            name: name.to_owned(),
            format,
            cam,
            lut,
            codes,
            out_min,
            out_max,
            out_bits,
            tech,
            fault_events: 0,
        }
    }

    /// The unit's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The input format.
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// CAM and LUT shapes.
    pub fn geometry(&self) -> (Geometry, Geometry) {
        (self.cam.geometry(), self.lut.geometry())
    }

    /// Count of fault-recovery events (0 on an ideal array).
    pub fn fault_events(&self) -> u64 {
        self.fault_events
    }

    /// Evaluates the function for one input through the crossbar path:
    /// quantize → CAM search → LUT read → dequantize.
    pub fn evaluate(&mut self, x: f64) -> f64 {
        let q = Fixed::from_f64(x, self.format, Rounding::Nearest);
        let key = star_fixed::encoding::to_twos_complement(q);
        let hits = self.cam.search(&key);
        let nominal = (self.format.max_raw() - q.raw()) as usize;
        let hot: Vec<usize> = hits.iter().enumerate().filter(|(_, &h)| h).map(|(i, _)| i).collect();
        let row = match hot.as_slice() {
            [r] => *r,
            _ => {
                self.fault_events += 1;
                nominal
            }
        };
        let code = self.lut.read_row(row);
        self.decode(code)
    }

    /// Evaluates a whole slice.
    pub fn evaluate_all(&mut self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.evaluate(x)).collect()
    }

    /// Dequantizes an output code.
    fn decode(&self, code: u64) -> f64 {
        let scale = ((1u64 << self.out_bits) - 1) as f64;
        self.out_min + code as f64 / scale * (self.out_max - self.out_min)
    }

    /// Worst-case output quantization step.
    pub fn output_resolution(&self) -> f64 {
        (self.out_max - self.out_min) / ((1u64 << self.out_bits) - 1) as f64
    }

    /// Cost of one evaluation: CAM search then LUT read.
    pub fn evaluate_cost(&self) -> OpCost {
        self.cam.search_cost().then(self.lut.read_cost())
    }

    /// Itemized area/power budget.
    pub fn cost_sheet(&self, activity: f64) -> CostSheet {
        let mut sheet = CostSheet::new(self.name.clone());
        sheet.absorb(&self.cam.cost_sheet("cam", activity));
        sheet.absorb(&self.lut.cost_sheet("lut", activity));
        let _ = &self.tech;
        sheet
    }

    /// The nominal output code table (index = row, descending input order).
    pub fn codes(&self) -> &[u64] {
        &self.codes
    }
}

/// Convenience constructors for the transformer's non-linearities.
impl LutFunctionUnit {
    /// A GELU unit (outputs span `[min_input·0.2, max_input]`, covering
    /// GELU's small negative lobe).
    pub fn gelu(format: QFormat, out_bits: u8) -> Self {
        let lo = format.min_value();
        let hi = format.max_value();
        Self::new("gelu", format, star_attention::gelu, (0.2 * lo, hi), out_bits)
    }

    /// A logistic-sigmoid unit (outputs in `[0, 1]`).
    pub fn sigmoid(format: QFormat, out_bits: u8) -> Self {
        Self::new("sigmoid", format, |x| 1.0 / (1.0 + (-x).exp()), (0.0, 1.0), out_bits)
    }

    /// A tanh unit (outputs in `[-1, 1]`).
    pub fn tanh(format: QFormat, out_bits: u8) -> Self {
        Self::new("tanh", format, f64::tanh, (-1.0, 1.0), out_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmt() -> QFormat {
        QFormat::new(3, 4).expect("valid") // 8-bit domain, [-8, 8)
    }

    #[test]
    fn sigmoid_accuracy() {
        let mut unit = LutFunctionUnit::sigmoid(fmt(), 16);
        for i in -60..=60 {
            let x = i as f64 / 8.0;
            let y = unit.evaluate(x);
            let truth = 1.0 / (1.0 + (-x).exp());
            // Input quantization (2^-4) dominates; sigmoid slope ≤ 1/4.
            assert!((y - truth).abs() < 0.02, "x={x} y={y} truth={truth}");
        }
        assert_eq!(unit.fault_events(), 0);
    }

    #[test]
    fn tanh_odd_symmetry() {
        let mut unit = LutFunctionUnit::tanh(fmt(), 16);
        for i in 1..=40 {
            let x = i as f64 / 8.0;
            let a = unit.evaluate(x);
            let b = unit.evaluate(-x);
            assert!((a + b).abs() < 2.0 * unit.output_resolution() + 1e-9, "x={x}");
        }
    }

    #[test]
    fn gelu_matches_reference() {
        let mut unit = LutFunctionUnit::gelu(fmt(), 16);
        for i in -31..=31 {
            // Stay inside the q3.4 domain [-8, 7.9375].
            let x = i as f64 / 4.0;
            let y = unit.evaluate(x);
            assert!((y - star_attention::gelu(x)).abs() < 0.05, "x={x} y={y}");
        }
    }

    #[test]
    fn geometry_matches_format() {
        let unit = LutFunctionUnit::sigmoid(fmt(), 12);
        let (cam, lut) = unit.geometry();
        assert_eq!(cam.rows(), 256); // 2^8 codes
        assert_eq!(cam.cols(), 16); // complementary pairs of 8 bits
        assert_eq!(lut.cols(), 12);
        assert_eq!(unit.codes().len(), 256);
    }

    #[test]
    fn out_of_domain_saturates() {
        let mut unit = LutFunctionUnit::sigmoid(fmt(), 16);
        let hi = unit.evaluate(100.0); // clamps to max input 7.9375
        assert!(hi > 0.99);
        let lo = unit.evaluate(-100.0);
        assert!(lo < 0.01);
    }

    #[test]
    fn evaluate_all_matches_scalar() {
        let mut unit = LutFunctionUnit::tanh(fmt(), 16);
        let xs = [0.5, -1.25, 3.0];
        let batch = unit.evaluate_all(&xs);
        let mut unit2 = LutFunctionUnit::tanh(fmt(), 16);
        for (x, b) in xs.iter().zip(&batch) {
            assert_eq!(unit2.evaluate(*x), *b);
        }
    }

    #[test]
    fn cost_and_sheet_positive() {
        let unit = LutFunctionUnit::gelu(fmt(), 16);
        let c = unit.evaluate_cost();
        assert!(c.energy.value() > 0.0 && c.latency.value() > 0.0);
        let sheet = unit.cost_sheet(0.5);
        assert!(sheet.total_area().value() > 0.0);
        assert_eq!(unit.name(), "gelu");
        assert_eq!(unit.format(), fmt());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_rejected() {
        let _ = LutFunctionUnit::new("bad", fmt(), |x| x, (1.0, 1.0), 8);
    }

    #[test]
    fn output_resolution_shrinks_with_bits() {
        let coarse = LutFunctionUnit::sigmoid(fmt(), 8);
        let fine = LutFunctionUnit::sigmoid(fmt(), 16);
        assert!(fine.output_resolution() < coarse.output_resolution() / 100.0);
    }
}
