//! The STAR softmax engine and its comparison points — the paper's primary
//! contribution.
//!
//! STAR ("Softmax wiTh rrAm cRossbar", DATE 2023) accelerates the softmax
//! of attention models with RRAM crossbars: a time-multiplexed CAM/SUB
//! array finds `x_max` and computes `x_i − x_max` (Fig. 1), and a
//! CAM + LUT + VMM trio evaluates the exponentials, histogram-counts them
//! and produces the denominator `Σ exp(x_j − x_max)` in one analog shot
//! (Fig. 2). A vector-grained pipeline then overlaps softmax with the
//! attention matrix multiplies.
//!
//! This crate provides:
//!
//! - [`StarSoftmax`] — bit-accurate functional simulation of the engine on
//!   the `star-crossbar` arrays, plus its area/power/latency cost model,
//! - [`CmosBaselineSoftmax`] and [`Softermax`] — the Table I comparison
//!   designs, built from the same 32 nm component library,
//! - [`SoftmaxEngine`] — the common trait (functional + cost),
//! - [`attention_pipeline_latency`] — the vector-grained pipeline model
//!   against the operand-grained and unpipelined baselines,
//! - [`precision`] — the §II minimal-bitwidth study.
//!
//! # Examples
//!
//! ```
//! use star_attention::RowSoftmax;
//! use star_core::{SoftmaxEngine, StarSoftmax, StarSoftmaxConfig};
//! use star_fixed::QFormat;
//!
//! let mut engine = StarSoftmax::new(StarSoftmaxConfig::new(QFormat::CNEWS))?;
//! let p = engine.softmax_row(&[2.0, 0.5, -1.0]);
//! assert!(p[0] > p[1] && p[1] > p[2]);
//! let sheet = engine.cost_sheet();
//! println!("{}", sheet.to_table());
//! # Ok::<(), star_core::BuildStarError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod cmos_baseline;
pub mod design_space;
mod engine;
mod event_sim;
mod function_unit;
mod pipeline;
pub mod precision;
mod schedule;
mod softermax;
mod star;
pub mod trace;

pub use bank::EngineBank;
pub use cmos_baseline::CmosBaselineSoftmax;
pub use engine::{fixed_divide, RowSoftmax, SoftmaxEngine};
pub use event_sim::{simulate_pipeline, RowDurations, RowTimeline, SimResult};
pub use function_unit::LutFunctionUnit;
pub use pipeline::{attention_pipeline_latency, PipelineMode, PipelineReport, RowStageLatency};
pub use schedule::{EnginePhase, RowSchedule, ScheduledOp};
pub use softermax::Softermax;
pub use star::{BuildStarError, StarGeometry, StarSoftmax, StarSoftmaxConfig};
pub use trace::{pipeline_chrome_trace, StageUtilization, UtilizationReport};
