//! The §II precision study: find the minimal fixed-point format per
//! dataset that keeps model accuracy, trading precision for hardware
//! efficiency.

use crate::{SoftmaxEngine, StarSoftmax, StarSoftmaxConfig};
use serde::{Deserialize, Serialize};
use star_attention::{argmax, cosine_similarity, kl_divergence, ExactSoftmax, RowSoftmax};
use star_fixed::QFormat;

/// Accuracy of one candidate format on a set of score rows, next to the
/// engine cost it would imply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The candidate format.
    pub format: QFormat,
    /// Total bits (sign + integer + fraction).
    pub total_bits: u8,
    /// Mean absolute probability error vs the exact softmax.
    pub mean_abs_error: f64,
    /// Largest absolute probability error.
    pub max_abs_error: f64,
    /// Mean row KL divergence (exact ‖ engine).
    pub mean_kl: f64,
    /// Mean row cosine similarity.
    pub mean_cosine: f64,
    /// Fraction of rows whose argmax agrees with the exact softmax.
    pub top1_agreement: f64,
    /// Engine area in µm² at this format.
    pub engine_area_um2: f64,
    /// Engine power in mW at this format.
    pub engine_power_mw: f64,
}

/// Acceptance criterion for the sweep (the "high model accuracy" bar).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyBar {
    /// Minimum top-1 agreement (default 0.999).
    pub min_top1: f64,
    /// Maximum mean absolute probability error (default 2e-3).
    pub max_mean_abs_error: f64,
}

impl Default for AccuracyBar {
    fn default() -> Self {
        AccuracyBar { min_top1: 0.999, max_mean_abs_error: 2e-3 }
    }
}

impl AccuracyBar {
    /// Whether a sweep point clears the bar.
    pub fn accepts(&self, point: &SweepPoint) -> bool {
        point.top1_agreement >= self.min_top1 && point.mean_abs_error <= self.max_mean_abs_error
    }
}

/// Evaluates one candidate format on the given score rows: runs the STAR
/// engine at that format against the exact softmax.
///
/// # Errors
///
/// Propagates [`crate::BuildStarError`] from engine construction.
///
/// # Panics
///
/// Panics if `rows` is empty or contains an empty row.
pub fn evaluate_format(
    format: QFormat,
    rows: &[Vec<f64>],
) -> Result<SweepPoint, crate::BuildStarError> {
    assert!(!rows.is_empty(), "precision sweep needs at least one score row");
    let max_len = rows.iter().map(Vec::len).max().expect("non-empty");
    let mut engine =
        StarSoftmax::new(StarSoftmaxConfig::new(format).with_max_row_len(max_len.max(1)))?;
    let mut exact = ExactSoftmax::new();

    let mut sum_abs = 0.0f64;
    let mut max_abs = 0.0f64;
    let mut sum_kl = 0.0f64;
    let mut sum_cos = 0.0f64;
    let mut agree = 0usize;
    let mut elems = 0usize;
    for row in rows {
        assert!(!row.is_empty(), "score rows must be non-empty");
        let p = exact.softmax_row(row);
        let q = engine.softmax_row(row);
        for (&a, &b) in p.iter().zip(&q) {
            let e = (a - b).abs();
            sum_abs += e;
            max_abs = max_abs.max(e);
        }
        elems += row.len();
        sum_kl += kl_divergence(&p, &q);
        sum_cos += cosine_similarity(&p, &q);
        if argmax(&p) == argmax(&q) {
            agree += 1;
        }
    }
    let sheet = engine.cost_sheet();
    Ok(SweepPoint {
        format,
        total_bits: format.total_bits(),
        mean_abs_error: sum_abs / elems as f64,
        max_abs_error: max_abs,
        mean_kl: sum_kl / rows.len() as f64,
        mean_cosine: sum_cos / rows.len() as f64,
        top1_agreement: agree as f64 / rows.len() as f64,
        engine_area_um2: sheet.total_area().value(),
        engine_power_mw: sheet.total_power().value(),
    })
}

/// Sweeps every `(int_bits, frac_bits)` combination in the given inclusive
/// ranges, returning points ordered by total bits (cheapest first).
///
/// # Errors
///
/// Propagates engine construction errors.
pub fn sweep_formats(
    rows: &[Vec<f64>],
    int_bits: std::ops::RangeInclusive<u8>,
    frac_bits: std::ops::RangeInclusive<u8>,
) -> Result<Vec<SweepPoint>, crate::BuildStarError> {
    let mut points = Vec::new();
    for i in int_bits {
        for f in frac_bits.clone() {
            if let Ok(fmt) = QFormat::new(i, f) {
                points.push(evaluate_format(fmt, rows)?);
            }
        }
    }
    points.sort_by_key(|p| (p.total_bits, p.format.int_bits()));
    Ok(points)
}

/// The minimal-bit format that clears the accuracy bar — the paper's
/// per-dataset recommendation. Ties at equal total bits are broken toward
/// more integer bits (range beats resolution for softmax, whose inputs are
/// max-subtracted anyway).
pub fn minimal_format(points: &[SweepPoint], bar: AccuracyBar) -> Option<&SweepPoint> {
    points
        .iter()
        .filter(|p| bar.accepts(p))
        .min_by_key(|p| (p.total_bits, std::cmp::Reverse(p.format.int_bits())))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic score rows spanning roughly [-12, 12].
    fn rows() -> Vec<Vec<f64>> {
        (0..24)
            .map(|r| (0..32).map(|c| ((r * 31 + c * 17) as f64 * 0.618).sin() * 12.0).collect())
            .collect()
    }

    #[test]
    fn wider_formats_are_more_accurate() {
        let rows = rows();
        let narrow = evaluate_format(QFormat::new(4, 1).unwrap(), &rows).unwrap();
        let wide = evaluate_format(QFormat::new(5, 4).unwrap(), &rows).unwrap();
        assert!(wide.mean_abs_error <= narrow.mean_abs_error);
        assert!(wide.mean_kl <= narrow.mean_kl);
        assert!(wide.top1_agreement >= narrow.top1_agreement);
    }

    #[test]
    fn sweep_sorted_by_bits() {
        let rows = rows();
        let points = sweep_formats(&rows, 4..=5, 1..=2).unwrap();
        assert_eq!(points.len(), 4);
        for w in points.windows(2) {
            assert!(w[0].total_bits <= w[1].total_bits);
        }
    }

    #[test]
    fn minimal_format_respects_bar() {
        let rows = rows();
        let points = sweep_formats(&rows, 3..=5, 0..=4).unwrap();
        let bar = AccuracyBar { min_top1: 0.95, max_mean_abs_error: 5e-3 };
        let best = minimal_format(&points, bar).expect("some format passes");
        assert!(bar.accepts(best));
        // Nothing cheaper passes.
        for p in &points {
            if p.total_bits < best.total_bits {
                assert!(!bar.accepts(p), "{} should fail", p.format);
            }
        }
        // Scores reach ±12, so at least 4 integer bits are needed.
        assert!(best.format.int_bits() >= 4);
    }

    #[test]
    fn impossible_bar_returns_none() {
        let rows = rows();
        let points = sweep_formats(&rows, 2..=2, 0..=1).unwrap();
        let bar = AccuracyBar { min_top1: 1.0, max_mean_abs_error: 1e-12 };
        assert!(minimal_format(&points, bar).is_none());
    }

    #[test]
    fn area_grows_with_bits() {
        let rows = rows();
        let small = evaluate_format(QFormat::new(4, 1).unwrap(), &rows).unwrap();
        let big = evaluate_format(QFormat::new(5, 4).unwrap(), &rows).unwrap();
        assert!(big.engine_area_um2 > small.engine_area_um2);
    }
}
