//! The STAR RRAM-crossbar softmax engine (Figs. 1 and 2 of the paper).
//!
//! Dataflow for one score row `x_1 … x_n`:
//!
//! 1. **Quantize** each score to the configured fixed-point format.
//! 2. **CAM/SUB crossbar** (time-multiplexed, §II-1): find `x_max` by
//!    parallel search + OR-merge + priority encode over the
//!    descending-order value rows, then compute every `x_i − x_max` as an
//!    analog bitline difference.
//! 3. **Exponential stage** (§II-2): the difference magnitude (sign bit
//!    removed — differences are never positive) is searched in the exp CAM
//!    crossbar; its one-hot matchline drives the LUT crossbar row holding
//!    the pre-computed `exp` code, and simultaneously increments that
//!    row's **counter**.
//! 4. **Summation**: once the row is consumed, the counter histogram is
//!    applied to the VMM crossbar (programmed with the same exp table),
//!    producing `Σ_j exp(x_j − x_max)` in one analog shot.
//! 5. **Division**: a fixed-point divider produces
//!    `exp(x_i − x_max) / Σ` for each element.

use crate::engine::{fixed_divide, SoftmaxEngine};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use star_attention::RowSoftmax;
use star_crossbar::{
    CamCrossbar, CamSubCrossbar, Geometry, LutCrossbar, OpCost, Readout, VmmCrossbar,
};
use star_device::peripherals::PeripheralLibrary;
use star_device::{AdcSpec, CostSheet, Latency, NoiseModel, TechnologyParams};
use star_fixed::{encoding, Fixed, QFormat, Rounding};
use std::error::Error;
use std::fmt;

/// Configuration error for [`StarSoftmax`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildStarError {
    /// The exponential word width must be in `1..=32` bits.
    ExpWordBits(u8),
    /// The divider quotient width must be in `1..=32` bits.
    QuotientBits(u8),
    /// The maximum row length must be positive.
    MaxRowLen(usize),
}

impl fmt::Display for BuildStarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BuildStarError::ExpWordBits(b) => write!(f, "exp word width {b} outside 1..=32 bits"),
            BuildStarError::QuotientBits(b) => write!(f, "quotient width {b} outside 1..=32 bits"),
            BuildStarError::MaxRowLen(n) => write!(f, "maximum row length {n} must be positive"),
        }
    }
}

impl Error for BuildStarError {}

/// Builder-style configuration of the STAR softmax engine.
///
/// # Examples
///
/// ```
/// use star_core::{StarSoftmax, StarSoftmaxConfig};
/// use star_fixed::QFormat;
///
/// // The paper's 9-bit configuration (512×18 CAM/SUB, 256×18 CAM/LUT/VMM).
/// let engine = StarSoftmax::new(StarSoftmaxConfig::new(QFormat::MRPC))?;
/// let g = engine.geometry();
/// assert_eq!((g.cam_sub.rows(), g.cam_sub.cols()), (512, 18));
/// assert_eq!((g.lut.rows(), g.lut.cols()), (256, 18));
/// # Ok::<(), star_core::BuildStarError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StarSoftmaxConfig {
    /// Input fixed-point format (the per-dataset formats of §II).
    pub format: QFormat,
    /// Word width of the exp LUT/VMM crossbars. The paper uses
    /// `2 × total_bits` columns (18 for the 9-bit configuration), which is
    /// the default.
    pub exp_word_bits: u8,
    /// Divider quotient precision (default 16 bits).
    pub quotient_bits: u8,
    /// Largest supported row length — sizes the histogram counters
    /// (default 512, BERT-base's longest sequence).
    pub max_row_len: usize,
    /// Device non-ideality model applied to all arrays.
    pub noise: NoiseModel,
    /// Technology operating point.
    pub tech: TechnologyParams,
    /// Optional ADC on the summation VMM readout (`None` = ideal digital
    /// readout; the sum feeds a digital divider, so a real design would
    /// size this ADC to the exp word width).
    pub vmm_adc: Option<AdcSpec>,
    /// RNG seed for fault sampling and noisy operations.
    pub seed: u64,
}

impl StarSoftmaxConfig {
    /// Default configuration for a given input format.
    pub fn new(format: QFormat) -> Self {
        StarSoftmaxConfig {
            format,
            exp_word_bits: format.total_bits() * 2,
            quotient_bits: 16,
            max_row_len: 512,
            noise: NoiseModel::ideal(),
            tech: TechnologyParams::cmos32(),
            vmm_adc: None,
            seed: 0x57A5,
        }
    }

    /// Sets the exp LUT/VMM word width.
    pub fn with_exp_word_bits(mut self, bits: u8) -> Self {
        self.exp_word_bits = bits;
        self
    }

    /// Sets the divider quotient width.
    pub fn with_quotient_bits(mut self, bits: u8) -> Self {
        self.quotient_bits = bits;
        self
    }

    /// Sets the maximum supported row length.
    pub fn with_max_row_len(mut self, n: usize) -> Self {
        self.max_row_len = n;
        self
    }

    /// Sets the device noise model.
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables an ADC readout on the summation VMM.
    pub fn with_vmm_adc(mut self, adc: AdcSpec) -> Self {
        self.vmm_adc = Some(adc);
        self
    }
}

/// The crossbar shapes of a built engine (the paper's §III sizing facts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StarGeometry {
    /// CAM/SUB array (2^total_bits × 2·total_bits).
    pub cam_sub: Geometry,
    /// Exponential-stage CAM (2^(total_bits−1) × 2·(total_bits−1)).
    pub exp_cam: Geometry,
    /// Exponential LUT (2^(total_bits−1) × exp_word_bits).
    pub lut: Geometry,
    /// Summation VMM (2^(total_bits−1) × exp_word_bits physical bitlines).
    pub vmm: Geometry,
}

/// The STAR softmax engine.
///
/// Implements [`RowSoftmax`] (functional, bit-accurate over the crossbar
/// simulators) and [`SoftmaxEngine`] (area/power/latency).
///
/// # Examples
///
/// ```
/// use star_attention::RowSoftmax;
/// use star_core::{StarSoftmax, StarSoftmaxConfig};
/// use star_fixed::QFormat;
///
/// let mut engine = StarSoftmax::new(StarSoftmaxConfig::new(QFormat::CNEWS))?;
/// let p = engine.softmax_row(&[1.0, 2.0, 3.0, 4.0]);
/// let sum: f64 = p.iter().sum();
/// assert!((sum - 1.0).abs() < 0.01); // quantized but normalized
/// assert!(p[3] > p[2] && p[2] > p[1]);
/// # Ok::<(), star_core::BuildStarError>(())
/// ```
#[derive(Debug)]
pub struct StarSoftmax {
    config: StarSoftmaxConfig,
    cam_sub: CamSubCrossbar,
    exp_cam: CamCrossbar,
    lut: LutCrossbar,
    vmm: VmmCrossbar,
    /// Nominal exp codes per difference magnitude (index = magnitude code).
    exp_codes: Vec<u32>,
    counter_bits: u8,
    fault_events: u64,
    rng: ChaCha8Rng,
    name: String,
}

impl StarSoftmax {
    /// Builds the engine: programs the CAM/SUB value table, the exp CAM
    /// magnitude table, and the exp LUT/VMM tables.
    ///
    /// # Errors
    ///
    /// Returns [`BuildStarError`] for out-of-range widths.
    pub fn new(config: StarSoftmaxConfig) -> Result<Self, BuildStarError> {
        if !(1..=32).contains(&config.exp_word_bits) {
            return Err(BuildStarError::ExpWordBits(config.exp_word_bits));
        }
        if !(1..=32).contains(&config.quotient_bits) {
            return Err(BuildStarError::QuotientBits(config.quotient_bits));
        }
        if config.max_row_len == 0 {
            return Err(BuildStarError::MaxRowLen(config.max_row_len));
        }
        let fmt = config.format;
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let cam_sub = CamSubCrossbar::new(fmt, &config.tech, config.noise, &mut rng);

        let magnitudes = fmt.num_magnitudes() as usize;
        let mag_bits = fmt.value_bits() as usize;
        let mut exp_cam =
            CamCrossbar::new(magnitudes, mag_bits, &config.tech, config.noise, &mut rng);
        let mut lut = LutCrossbar::new(
            magnitudes,
            config.exp_word_bits as usize,
            &config.tech,
            config.noise,
            &mut rng,
        );
        let readout = match config.vmm_adc {
            Some(adc) => Readout::Adc(adc),
            None => Readout::Ideal,
        };
        let mut vmm = VmmCrossbar::new(
            magnitudes,
            1,
            config.exp_word_bits,
            readout,
            &config.tech,
            config.noise,
            &mut rng,
        );

        // Pre-compute the exponential table: magnitude code m represents the
        // difference −m·2^−frac, so the stored value is exp(−m·resolution),
        // quantized to the exp word width (exp(0) = 1.0 maps to full scale).
        let scale = (1u64 << config.exp_word_bits) - 1;
        let mut exp_codes = Vec::with_capacity(magnitudes);
        let mut weights = Vec::with_capacity(magnitudes);
        for m in 0..magnitudes {
            let x = m as f64 * fmt.resolution();
            let code = ((-x).exp() * scale as f64).round() as u32;
            exp_codes.push(code);
            weights.push(vec![code]);
            lut.store_word(m, code as u64);
            let bits: Vec<bool> = (0..mag_bits).rev().map(|b| (m >> b) & 1 == 1).collect();
            exp_cam.store_row(m, &bits);
        }
        vmm.store_weights(&weights);

        let counter_bits = (usize::BITS - config.max_row_len.leading_zeros()) as u8;
        Ok(StarSoftmax {
            config,
            cam_sub,
            exp_cam,
            lut,
            vmm,
            exp_codes,
            counter_bits,
            fault_events: 0,
            rng,
            name: format!("star-rram-{}bit", fmt.total_bits()),
        })
    }

    /// The engine configuration.
    pub fn config(&self) -> &StarSoftmaxConfig {
        &self.config
    }

    /// The built crossbar shapes (§III sizing).
    pub fn geometry(&self) -> StarGeometry {
        StarGeometry {
            cam_sub: self.cam_sub.geometry(),
            exp_cam: self.exp_cam.geometry(),
            lut: self.lut.geometry(),
            vmm: self.vmm.geometry(),
        }
    }

    /// Number of fault-recovery events (all-miss searches or corrupted
    /// one-hots repaired by the controller). Always 0 on an ideal array.
    pub fn fault_events(&self) -> u64 {
        self.fault_events
    }

    /// The nominal exponential code table (index = difference magnitude).
    pub fn exp_codes(&self) -> &[u32] {
        &self.exp_codes
    }

    /// Quantizes a raw score into the engine's input format.
    pub fn quantize(&self, score: f64) -> Fixed {
        Fixed::from_f64(score, self.config.format, Rounding::Nearest)
    }

    /// Runs the exponential stage for one difference, returning the exp
    /// code read from the LUT (and updating the histogram + fault count).
    fn exp_lookup(&mut self, diff: Fixed, histogram: &mut [u64]) -> u32 {
        let clamped = encoding::clamp_for_magnitude(diff);
        let mag = clamped.magnitude_code() as usize;
        let bits = encoding::to_magnitude(clamped);
        let one_hot = self.exp_cam.search(&bits);
        let hot: Vec<usize> =
            one_hot.iter().enumerate().filter(|(_, &h)| h).map(|(i, _)| i).collect();
        let row = match hot.as_slice() {
            [r] => *r,
            _ => {
                // Fault recovery: a defective CAM produced zero or multiple
                // matchlines; the controller falls back to the nominal row.
                self.fault_events += 1;
                star_telemetry::count("star.faults.recovered", 1);
                mag
            }
        };
        histogram[row] += 1;
        star_telemetry::count("star.exp.lut_hits", 1);
        self.lut.read_row(row) as u32
    }

    /// Softmaxes every row of a score matrix through the engine.
    ///
    /// # Panics
    ///
    /// Panics if any row exceeds the configured maximum length.
    pub fn softmax_matrix(&mut self, scores: &star_attention::Matrix) -> star_attention::Matrix {
        star_attention::softmax_rows(self, scores)
    }

    /// Total *measured* dynamic energy recorded by the array ledgers since
    /// the last [`StarSoftmax::reset_ledgers`] — the functional
    /// simulation's own accounting, as opposed to the analytical
    /// [`SoftmaxEngine::row_cost`] model. Covers the crossbar arrays only
    /// (counters and divider are modeled analytically).
    pub fn measured_energy(&self) -> star_device::Energy {
        self.cam_sub.measured_energy()
            + self.exp_cam.ledger().energy
            + self.lut.ledger().energy
            + self.vmm.ledger().energy
    }

    /// Resets all array ledgers.
    pub fn reset_ledgers(&mut self) {
        self.cam_sub.reset_ledgers();
        self.exp_cam.reset_ledger();
        self.lut.reset_ledger();
        self.vmm.reset_ledger();
    }

    /// Cost of the exponential stage for one element: CAM search, then LUT
    /// read overlapped with the counter increment.
    pub fn exp_element_cost(&self) -> OpCost {
        let counter = PeripheralLibrary::counter(self.counter_bits);
        let counter_cost = OpCost::new(counter.energy_per_op(), counter.latency_per_op());
        self.exp_cam.search_cost().then(self.lut.read_cost().alongside(counter_cost))
    }

    /// Cost of the one-shot histogram × exp-table VMM.
    pub fn sum_cost(&self) -> OpCost {
        self.vmm.vmm_cost(self.counter_bits)
    }

    /// Cost of the `n` pipelined divisions (one result per cycle after the
    /// first).
    pub fn divide_cost(&self, n: usize) -> OpCost {
        let div = PeripheralLibrary::fixed_divider(self.config.exp_word_bits);
        OpCost::new(
            div.energy_per_op() * n as f64,
            Latency::new(div.latency_per_op().value() + (n.saturating_sub(1)) as f64),
        )
    }

    /// Cost of the final summation + division for a row of `n` elements.
    pub fn normalize_cost(&self, n: usize) -> OpCost {
        self.sum_cost().then(self.divide_cost(n))
    }

    /// The CAM/SUB array's per-op costs: `(search, merge, subtract)` —
    /// the raw material of the controller schedule
    /// ([`crate::RowSchedule`]).
    pub fn cam_sub_costs(&self) -> (OpCost, OpCost, OpCost) {
        (self.cam_sub.search_cost(), self.cam_sub.merge_cost(), self.cam_sub.subtract_cost())
    }
}

impl RowSoftmax for StarSoftmax {
    fn softmax_row(&mut self, scores: &[f64]) -> Vec<f64> {
        assert!(!scores.is_empty(), "softmax of an empty row is undefined");
        assert!(
            scores.len() <= self.config.max_row_len,
            "row length {} exceeds configured maximum {}",
            scores.len(),
            self.config.max_row_len
        );
        let xs: Vec<Fixed> = scores.iter().map(|&s| self.quantize(s)).collect();
        star_telemetry::count("star.softmax.rows", 1);
        star_telemetry::count("star.softmax.elements", scores.len() as u64);
        star_telemetry::observe_with(
            "star.softmax.row_len",
            scores.len() as f64,
            &[8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0],
        );

        // Stage 1: x_i − x_max on the CAM/SUB crossbar.
        let max = match self.cam_sub.find_max(&xs) {
            Ok(found) => found.max,
            Err(_) => {
                // Fault recovery: digital max (the controller's safe path).
                self.fault_events += 1;
                star_telemetry::count("star.faults.recovered", 1);
                xs.iter().copied().max().expect("non-empty")
            }
        };
        let noise = self.config.noise;
        let diffs: Vec<Fixed> = if noise.read_sigma > 0.0 {
            let mut rng = self.rng.clone();
            let out =
                xs.iter().map(|&x| self.cam_sub.subtract_noisy(x, max, &noise, &mut rng)).collect();
            self.rng = rng;
            out
        } else {
            xs.iter().map(|&x| self.cam_sub.subtract(x, max)).collect()
        };

        // Stage 2: exponential lookups + histogram counting.
        let magnitudes = self.config.format.num_magnitudes() as usize;
        let mut histogram = vec![0u64; magnitudes];
        let codes: Vec<u32> = diffs.iter().map(|&d| self.exp_lookup(d, &mut histogram)).collect();

        // Summation on the VMM crossbar, then fixed-point division.
        let sum_raw = if noise.read_sigma > 0.0 {
            let mut rng = self.rng.clone();
            let s = self.vmm.multiply_with(&histogram, self.counter_bits, &mut rng)[0];
            self.rng = rng;
            s
        } else {
            self.vmm.multiply(&histogram, self.counter_bits)[0]
        };
        let sum = sum_raw.round().max(1.0) as u64;
        star_telemetry::count("star.div.quotients", codes.len() as u64);
        codes.iter().map(|&c| fixed_divide(c as u64, sum, self.config.quotient_bits)).collect()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl SoftmaxEngine for StarSoftmax {
    fn cost_sheet(&self) -> CostSheet {
        // Activity factors follow the engine's own dataflow (see
        // `row_cost`): a row of n elements occupies ≈5n array cycles
        // (n searches + n subtractions on the CAM/SUB, n exp searches,
        // n LUT reads, n divides), and each individual array is busy for
        // n of them — a 1/5 duty cycle while rows stream back to back.
        // The summation VMM fires once per row (≈1/n duty at seq 128).
        let streaming = 1.0 / 5.0;
        let per_row = 1.0 / 128.0;
        let mut sheet = CostSheet::new(self.name.clone());
        sheet.absorb(&self.cam_sub.cost_sheet("cam/sub", streaming));
        sheet.absorb(&self.exp_cam.cost_sheet("exp-cam", streaming));
        sheet.absorb(&self.lut.cost_sheet("exp-lut", streaming));
        sheet.absorb(&self.vmm.cost_sheet("sum-vmm", per_row));
        let counters =
            PeripheralLibrary::counter(self.counter_bits).replicate(self.exp_codes.len());
        sheet.add(
            "counter bank",
            counters.area(),
            counters.static_power()
                + (PeripheralLibrary::counter(self.counter_bits).energy_per_op()
                    / Latency::new(self.config.tech.cmos_clock_ns()))
                    * streaming,
        );
        let div = PeripheralLibrary::fixed_divider(self.config.exp_word_bits);
        sheet.add("divider", div.area(), div.average_power(streaming));
        sheet
    }

    fn row_cost(&self, n: usize) -> OpCost {
        self.cam_sub
            .stage1_cost(n)
            .then(self.exp_element_cost().repeat(n as u64))
            .then(self.normalize_cost(n))
    }

    fn format(&self) -> Option<QFormat> {
        Some(self.config.format)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_attention::ExactSoftmax;

    fn engine(fmt: QFormat) -> StarSoftmax {
        StarSoftmax::new(StarSoftmaxConfig::new(fmt)).expect("valid config")
    }

    #[test]
    fn paper_geometry_9bit_config() {
        let e = engine(QFormat::MRPC);
        let g = e.geometry();
        assert_eq!((g.cam_sub.rows(), g.cam_sub.cols()), (512, 18));
        assert_eq!((g.exp_cam.rows(), g.exp_cam.cols()), (256, 16));
        assert_eq!((g.lut.rows(), g.lut.cols()), (256, 18));
        assert_eq!(g.vmm.rows(), 256);
    }

    #[test]
    fn output_close_to_exact() {
        let mut star = engine(QFormat::MRPC);
        let mut exact = ExactSoftmax::new();
        let scores = [1.2, -0.7, 3.3, 0.0, 2.05, -4.4, 1.9, 0.4];
        let p = star.softmax_row(&scores);
        let q = exact.softmax_row(&scores);
        for (a, b) in p.iter().zip(&q) {
            assert!((a - b).abs() < 0.02, "star {a} vs exact {b}");
        }
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 0.01);
        assert_eq!(star.fault_events(), 0);
    }

    #[test]
    fn preserves_ranking() {
        let mut star = engine(QFormat::CNEWS);
        let scores = [0.5, 2.5, -1.0, 4.0, 3.25];
        let p = star.softmax_row(&scores);
        assert!(p[3] > p[4]);
        assert!(p[4] > p[1]);
        assert!(p[1] > p[0]);
        assert!(p[0] > p[2]);
    }

    #[test]
    fn uniform_input_uniform_output() {
        let mut star = engine(QFormat::CNEWS);
        let p = star.softmax_row(&[1.0; 16]);
        for &v in &p {
            assert!((v - 1.0 / 16.0).abs() < 2e-3, "{v}");
        }
    }

    #[test]
    fn large_spread_saturates_gracefully() {
        let mut star = engine(QFormat::COLA);
        // -100 clips at the format minimum; its probability ≈ 0.
        let p = star.softmax_row(&[5.0, -100.0]);
        assert!(p[0] > 0.99);
        assert!(p[1] < 0.01);
    }

    #[test]
    fn exp_codes_monotone_decreasing() {
        let e = engine(QFormat::MRPC);
        let codes = e.exp_codes();
        assert_eq!(codes.len(), 256);
        assert_eq!(codes[0], (1u32 << 18) - 1); // exp(0) = full scale
        for w in codes.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn rejects_bad_config() {
        let bad = StarSoftmaxConfig::new(QFormat::CNEWS).with_quotient_bits(40);
        assert_eq!(StarSoftmax::new(bad).err(), Some(BuildStarError::QuotientBits(40)));
        let bad2 = StarSoftmaxConfig::new(QFormat::CNEWS).with_max_row_len(0);
        assert!(matches!(StarSoftmax::new(bad2), Err(BuildStarError::MaxRowLen(0))));
    }

    #[test]
    #[should_panic(expected = "exceeds configured maximum")]
    fn row_longer_than_max_panics() {
        let mut star =
            StarSoftmax::new(StarSoftmaxConfig::new(QFormat::CNEWS).with_max_row_len(4)).unwrap();
        let _ = star.softmax_row(&[0.0; 5]);
    }

    #[test]
    fn row_cost_grows_with_n() {
        let e = engine(QFormat::CNEWS);
        let c64 = e.row_cost(64);
        let c128 = e.row_cost(128);
        assert!(c128.latency.value() > c64.latency.value());
        assert!(c128.energy.value() > c64.energy.value());
        assert!(e.rows_per_second(128) > 0.0);
    }

    #[test]
    fn cost_sheet_itemized() {
        let e = engine(QFormat::CNEWS);
        let sheet = e.cost_sheet();
        assert!(sheet.items().iter().any(|i| i.name.contains("cam/sub")));
        assert!(sheet.items().iter().any(|i| i.name == "counter bank"));
        assert!(sheet.items().iter().any(|i| i.name == "divider"));
        assert!(sheet.total_area().value() > 0.0);
        assert!(sheet.total_power().value() > 0.0);
    }

    #[test]
    fn noisy_engine_still_ranks() {
        let cfg =
            StarSoftmaxConfig::new(QFormat::MRPC).with_noise(NoiseModel::new(0.0, 0.03, 0.0, 0.0));
        let mut star = StarSoftmax::new(cfg).unwrap();
        let p = star.softmax_row(&[3.0, 0.0, -3.0]);
        assert!(p[0] > p[1] && p[1] > p[2]);
    }

    #[test]
    fn faulty_engine_recovers() {
        // High stuck rates: fault recovery paths must keep the output a
        // (roughly) normalized distribution, and events must be counted.
        let cfg = StarSoftmaxConfig::new(QFormat::COLA)
            .with_noise(NoiseModel::new(0.0, 0.0, 0.02, 0.02))
            .with_seed(99);
        let mut star = StarSoftmax::new(cfg).unwrap();
        let p = star.softmax_row(&[2.0, 1.0, 0.0, -1.0, 3.5, 0.5, 1.5, -2.0]);
        let sum: f64 = p.iter().sum();
        assert!(sum > 0.5 && sum < 2.0, "sum {sum}");
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn measured_energy_tracks_model() {
        let mut e = engine(QFormat::CNEWS);
        e.reset_ledgers();
        assert_eq!(e.measured_energy().value(), 0.0);
        let n = 32;
        let row: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 8.0).collect();
        let _ = e.softmax_row(&row);
        let measured = e.measured_energy();
        let modeled = e.row_cost(n).energy;
        assert!(measured.value() > 0.0);
        // The ledger covers the crossbar arrays only; it must sit below the
        // full model but within the same order of magnitude.
        assert!(measured.value() <= modeled.value());
        assert!(measured.value() > modeled.value() * 0.1, "measured {measured} model {modeled}");
        e.reset_ledgers();
        assert_eq!(e.measured_energy().value(), 0.0);
    }

    #[test]
    fn softmax_matrix_normalizes_rows() {
        let mut e = engine(QFormat::MRPC);
        let m =
            star_attention::Matrix::from_fn(4, 8, |r, c| ((r * 8 + c) as f64 * 0.41).sin() * 6.0);
        let p = e.softmax_matrix(&m);
        assert_eq!(p.shape(), (4, 8));
        for r in 0..4 {
            let sum: f64 = p.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 0.01, "row {r} sum {sum}");
        }
    }

    #[test]
    fn quantize_uses_engine_format() {
        let e = engine(QFormat::CNEWS);
        assert_eq!(e.quantize(1.3).to_f64(), 1.25);
        assert_eq!(SoftmaxEngine::format(&e), Some(QFormat::CNEWS));
    }

    #[test]
    fn build_error_display() {
        assert!(BuildStarError::ExpWordBits(0).to_string().contains("exp word"));
        assert!(BuildStarError::QuotientBits(40).to_string().contains("quotient"));
        assert!(BuildStarError::MaxRowLen(0).to_string().contains("row length"));
    }
}
