//! Design-space exploration for the STAR softmax engine.
//!
//! §II frames the engine as a precision/efficiency trade-off; this module
//! makes the trade-off navigable: enumerate engine configurations (input
//! format × exponential word width × divider precision), evaluate each on
//! a shared workload, and extract the Pareto frontier over
//! (area, power, accuracy).

use crate::engine::SoftmaxEngine;
use crate::star::{BuildStarError, StarSoftmax, StarSoftmaxConfig};
use serde::{Deserialize, Serialize};
use star_attention::{argmax, ExactSoftmax, RowSoftmax};
use star_exec::Executor;
use star_fixed::QFormat;

/// One evaluated engine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Input fixed-point format.
    pub format: QFormat,
    /// Exponential LUT/VMM word width.
    pub exp_word_bits: u8,
    /// Divider quotient width.
    pub quotient_bits: u8,
    /// Engine area in µm².
    pub area_um2: f64,
    /// Engine power in mW.
    pub power_mw: f64,
    /// One-row (seq 128) latency in ns.
    pub row_latency_ns: f64,
    /// Mean absolute probability error vs the exact softmax.
    pub mean_abs_error: f64,
    /// Row top-1 agreement vs the exact softmax.
    pub top1_agreement: f64,
}

impl DesignPoint {
    /// Whether `self` dominates `other` in the Pareto sense over
    /// (area ↓, power ↓, error ↓): no worse on all, strictly better on one.
    pub fn dominates(&self, other: &DesignPoint) -> bool {
        let no_worse = self.area_um2 <= other.area_um2
            && self.power_mw <= other.power_mw
            && self.mean_abs_error <= other.mean_abs_error;
        let strictly_better = self.area_um2 < other.area_um2
            || self.power_mw < other.power_mw
            || self.mean_abs_error < other.mean_abs_error;
        no_worse && strictly_better
    }
}

/// The axes of the exploration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DesignSpace {
    /// Candidate input formats.
    pub formats: Vec<QFormat>,
    /// Candidate exponential word widths.
    pub exp_word_bits: Vec<u8>,
    /// Candidate divider quotient widths.
    pub quotient_bits: Vec<u8>,
}

impl DesignSpace {
    /// The space around the paper's operating points: the three dataset
    /// formats × {12, 16, 18, 24}-bit exp words × {12, 16}-bit quotients.
    pub fn paper_neighborhood() -> Self {
        DesignSpace {
            formats: vec![QFormat::COLA, QFormat::CNEWS, QFormat::MRPC],
            exp_word_bits: vec![12, 16, 18, 24],
            quotient_bits: vec![12, 16],
        }
    }

    /// Number of configurations in the cross product.
    pub fn len(&self) -> usize {
        self.formats.len() * self.exp_word_bits.len() * self.quotient_bits.len()
    }

    /// True if any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cross product of the three axes, in the fixed nested order
    /// (format, then exp word width, then quotient width) every evaluation
    /// reports in.
    pub fn configurations(&self) -> Vec<(QFormat, u8, u8)> {
        let mut configs = Vec::with_capacity(self.len());
        for &format in &self.formats {
            for &exp_bits in &self.exp_word_bits {
                for &q_bits in &self.quotient_bits {
                    configs.push((format, exp_bits, q_bits));
                }
            }
        }
        configs
    }

    /// Evaluates every configuration on the given score rows (serially —
    /// equivalent to [`DesignSpace::evaluate_par`] on a one-worker
    /// executor).
    ///
    /// # Errors
    ///
    /// Propagates [`BuildStarError`] from engine construction.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty.
    pub fn evaluate(&self, rows: &[Vec<f64>]) -> Result<Vec<DesignPoint>, BuildStarError> {
        self.evaluate_par(&Executor::serial(), rows)
    }

    /// Evaluates every configuration on the given score rows, with
    /// configurations fanned out across the executor's workers.
    ///
    /// Each configuration builds its own engine and is scored
    /// independently, and results are reduced in configuration order
    /// ([`DesignSpace::configurations`]), so the output — and, via the
    /// scoped-capture + commutative-merge telemetry protocol, the metric
    /// totals — are byte-identical for every worker count.
    ///
    /// # Errors
    ///
    /// Propagates the first [`BuildStarError`] in configuration order.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty.
    pub fn evaluate_par(
        &self,
        exec: &Executor,
        rows: &[Vec<f64>],
    ) -> Result<Vec<DesignPoint>, BuildStarError> {
        assert!(!rows.is_empty(), "need at least one evaluation row");
        let max_len = rows.iter().map(Vec::len).max().expect("non-empty");
        let mut exact = ExactSoftmax::new();
        let references: Vec<Vec<f64>> = rows.iter().map(|r| exact.softmax_row(r)).collect();

        let configs = self.configurations();
        let evaluated = exec.par_map(&configs, |_, &(format, exp_bits, q_bits)| {
            star_telemetry::with_scoped(|| {
                let config = StarSoftmaxConfig::new(format)
                    .with_exp_word_bits(exp_bits)
                    .with_quotient_bits(q_bits)
                    .with_max_row_len(max_len);
                let mut engine = StarSoftmax::new(config)?;
                let mut err_sum = 0.0;
                let mut elems = 0usize;
                let mut agree = 0usize;
                for (row, reference) in rows.iter().zip(&references) {
                    let p = engine.softmax_row(row);
                    err_sum += p.iter().zip(reference).map(|(a, b)| (a - b).abs()).sum::<f64>();
                    elems += row.len();
                    if argmax(&p) == argmax(reference) {
                        agree += 1;
                    }
                }
                let sheet = engine.cost_sheet();
                Ok(DesignPoint {
                    format,
                    exp_word_bits: exp_bits,
                    quotient_bits: q_bits,
                    area_um2: sheet.total_area().value(),
                    power_mw: sheet.total_power().value(),
                    row_latency_ns: engine.row_cost(128).latency.value(),
                    mean_abs_error: err_sum / elems as f64,
                    top1_agreement: agree as f64 / rows.len() as f64,
                })
            })
        });
        let mut points = Vec::with_capacity(configs.len());
        for (result, snap) in evaluated {
            star_telemetry::absorb(&snap);
            points.push(result?);
        }
        Ok(points)
    }
}

/// Extracts the Pareto-optimal subset over (area, power, error), sorted by
/// area.
pub fn pareto_front(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let mut front: Vec<DesignPoint> =
        points.iter().filter(|p| !points.iter().any(|q| q.dominates(p))).cloned().collect();
    front.sort_by(|a, b| a.area_um2.partial_cmp(&b.area_um2).expect("finite"));
    front.dedup();
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vec<f64>> {
        (0..12)
            .map(|r| (0..24).map(|c| ((r * 29 + c * 13) as f64 * 0.57).sin() * 10.0).collect())
            .collect()
    }

    fn small_space() -> DesignSpace {
        DesignSpace {
            formats: vec![QFormat::COLA, QFormat::MRPC],
            exp_word_bits: vec![12, 18],
            quotient_bits: vec![12, 16],
        }
    }

    #[test]
    fn evaluates_full_cross_product() {
        let space = small_space();
        assert_eq!(space.len(), 8);
        assert!(!space.is_empty());
        let points = space.evaluate(&rows()).expect("all build");
        assert_eq!(points.len(), 8);
        for p in &points {
            assert!(p.area_um2 > 0.0 && p.power_mw > 0.0);
            assert!(p.mean_abs_error.is_finite());
            assert!((0.0..=1.0).contains(&p.top1_agreement));
        }
    }

    #[test]
    fn parallel_evaluation_matches_serial_bitwise() {
        let space = small_space();
        let rows = rows();
        let serial = space.evaluate(&rows).expect("all build");
        for workers in [2, 8] {
            let par = space.evaluate_par(&Executor::new(workers), &rows).expect("all build");
            assert_eq!(par, serial, "workers={workers}");
        }
        // Configuration order is the reporting contract.
        let order: Vec<_> =
            serial.iter().map(|p| (p.format, p.exp_word_bits, p.quotient_bits)).collect();
        assert_eq!(order, space.configurations());
    }

    #[test]
    fn dominance_logic() {
        let a = DesignPoint {
            format: QFormat::COLA,
            exp_word_bits: 12,
            quotient_bits: 12,
            area_um2: 100.0,
            power_mw: 1.0,
            row_latency_ns: 10.0,
            mean_abs_error: 0.01,
            top1_agreement: 1.0,
        };
        let worse =
            DesignPoint { area_um2: 200.0, power_mw: 2.0, mean_abs_error: 0.02, ..a.clone() };
        let tradeoff = DesignPoint { area_um2: 50.0, mean_abs_error: 0.05, ..a.clone() };
        assert!(a.dominates(&worse));
        assert!(!worse.dominates(&a));
        assert!(!a.dominates(&tradeoff));
        assert!(!tradeoff.dominates(&a));
        assert!(!a.dominates(&a));
    }

    #[test]
    fn pareto_front_is_nondominated_and_covers_extremes() {
        let points = small_space().evaluate(&rows()).expect("all build");
        let front = pareto_front(&points);
        assert!(!front.is_empty());
        for p in &front {
            assert!(!points.iter().any(|q| q.dominates(p)), "dominated point on front");
        }
        // The cheapest design is always on the front.
        let min_area = points.iter().map(|p| p.area_um2).fold(f64::INFINITY, f64::min);
        assert!(front.iter().any(|p| p.area_um2 == min_area));
        // The most accurate design is always on the front.
        let min_err = points.iter().map(|p| p.mean_abs_error).fold(f64::INFINITY, f64::min);
        assert!(front.iter().any(|p| p.mean_abs_error == min_err));
        // Front sorted by area.
        for w in front.windows(2) {
            assert!(w[0].area_um2 <= w[1].area_um2);
        }
    }

    #[test]
    fn wider_exp_words_reduce_error() {
        let space = DesignSpace {
            formats: vec![QFormat::MRPC],
            exp_word_bits: vec![8, 20],
            quotient_bits: vec![16],
        };
        let points = space.evaluate(&rows()).expect("all build");
        assert!(points[1].mean_abs_error <= points[0].mean_abs_error);
        assert!(points[1].area_um2 > points[0].area_um2);
    }
}
