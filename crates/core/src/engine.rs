//! The softmax-engine abstraction.

use star_crossbar::OpCost;
use star_device::CostSheet;
use star_fixed::QFormat;

pub use star_attention::RowSoftmax;

/// A hardware softmax engine: a functional row-softmax plus the three cost
/// questions the evaluation asks of every design (area, power, latency).
///
/// Implemented by [`StarSoftmax`](crate::StarSoftmax),
/// [`CmosBaselineSoftmax`](crate::CmosBaselineSoftmax) and
/// [`Softermax`](crate::Softermax); Table I is the
/// [`SoftmaxEngine::cost_sheet`] of the three side by side, and the
/// accelerator models in `star-arch` schedule around
/// [`SoftmaxEngine::row_cost`].
pub trait SoftmaxEngine: RowSoftmax {
    /// Itemized area/power budget of the engine hardware.
    fn cost_sheet(&self) -> CostSheet;

    /// Energy and latency to softmax one row of `n` scores.
    fn row_cost(&self, n: usize) -> OpCost;

    /// The fixed-point input format, for quantized engines.
    fn format(&self) -> Option<QFormat> {
        None
    }

    /// Throughput in rows/s for rows of length `n` (derived from
    /// [`SoftmaxEngine::row_cost`], assuming back-to-back rows).
    fn rows_per_second(&self, n: usize) -> f64 {
        let lat = self.row_cost(n).latency;
        if lat.value() == 0.0 {
            f64::INFINITY
        } else {
            1e9 / lat.value()
        }
    }
}

/// Fixed-point division as the engines' divider hardware performs it:
/// `floor(numerator · 2^quotient_bits / denominator) / 2^quotient_bits`.
///
/// Returns 0 for a zero denominator (the hardware's saturating behaviour;
/// a zero softmax denominator cannot occur because `exp(0) = 1` is always
/// present).
///
/// # Examples
///
/// ```
/// use star_core::fixed_divide;
///
/// assert_eq!(fixed_divide(1, 3, 8), 85.0 / 256.0);
/// assert_eq!(fixed_divide(5, 5, 8), 1.0);
/// assert_eq!(fixed_divide(1, 0, 8), 0.0);
/// ```
pub fn fixed_divide(numerator: u64, denominator: u64, quotient_bits: u8) -> f64 {
    assert!(quotient_bits <= 32, "quotient width above 32 bits is unrealistic");
    if denominator == 0 {
        return 0.0;
    }
    let scaled = (numerator as u128) << quotient_bits;
    let q = scaled / denominator as u128;
    q as f64 / 2f64.powi(quotient_bits as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_divide_basics() {
        assert_eq!(fixed_divide(0, 7, 16), 0.0);
        assert_eq!(fixed_divide(7, 7, 16), 1.0);
        let third = fixed_divide(1, 3, 16);
        assert!((third - 1.0 / 3.0).abs() < 1.0 / 65536.0);
        // Truncating: never exceeds the true quotient.
        assert!(third <= 1.0 / 3.0);
    }

    #[test]
    fn fixed_divide_zero_denominator() {
        assert_eq!(fixed_divide(5, 0, 8), 0.0);
    }

    #[test]
    fn fixed_divide_large_values() {
        let v = fixed_divide(u64::MAX / 2, u64::MAX, 16);
        assert!((v - 0.5).abs() <= 1.0 / 65536.0);
    }

    #[test]
    #[should_panic(expected = "unrealistic")]
    fn fixed_divide_rejects_wide_quotient() {
        let _ = fixed_divide(1, 2, 33);
    }
}
