//! Replicated softmax engines with round-robin row dispatch — the
//! functional counterpart of the accelerator model's `softmax_units`
//! parameter: the STAR engine is tiny, so the vector-grained pipeline
//! instantiates several copies and interleaves score rows across them to
//! match the MatMul engine's row rate.

use crate::engine::SoftmaxEngine;
use crate::star::{BuildStarError, StarSoftmax, StarSoftmaxConfig};
use star_attention::RowSoftmax;
use star_crossbar::OpCost;
use star_device::CostSheet;
use star_fixed::QFormat;

/// A bank of identical STAR softmax engines with round-robin dispatch.
///
/// # Examples
///
/// ```
/// use star_attention::RowSoftmax;
/// use star_core::{EngineBank, StarSoftmaxConfig};
/// use star_fixed::QFormat;
///
/// let mut bank = EngineBank::new(StarSoftmaxConfig::new(QFormat::CNEWS), 4)?;
/// let p = bank.softmax_row(&[1.0, 2.0, 3.0]);
/// assert!(p[2] > p[0]);
/// assert_eq!(bank.units(), 4);
/// # Ok::<(), star_core::BuildStarError>(())
/// ```
#[derive(Debug)]
pub struct EngineBank {
    engines: Vec<StarSoftmax>,
    next: usize,
    name: String,
}

impl EngineBank {
    /// Builds `units` identical engines (each seeded differently so
    /// sampled faults are independent, as on a real die).
    ///
    /// # Errors
    ///
    /// Propagates [`BuildStarError`]; also rejects zero units.
    pub fn new(config: StarSoftmaxConfig, units: usize) -> Result<Self, BuildStarError> {
        if units == 0 {
            return Err(BuildStarError::MaxRowLen(0));
        }
        let engines = (0..units)
            .map(|i| StarSoftmax::new(config.with_seed(config.seed.wrapping_add(i as u64))))
            .collect::<Result<Vec<_>, _>>()?;
        let name = format!("star-bank-{}x{}bit", units, config.format.total_bits());
        Ok(EngineBank { engines, next: 0, name })
    }

    /// Number of engine copies.
    pub fn units(&self) -> usize {
        self.engines.len()
    }

    /// The index the next row will dispatch to.
    pub fn next_unit(&self) -> usize {
        self.next
    }

    /// Total fault-recovery events across the bank.
    pub fn fault_events(&self) -> u64 {
        self.engines.iter().map(StarSoftmax::fault_events).sum()
    }

    /// Shared engine configuration.
    pub fn config(&self) -> &StarSoftmaxConfig {
        self.engines[0].config()
    }
}

impl RowSoftmax for EngineBank {
    fn softmax_row(&mut self, scores: &[f64]) -> Vec<f64> {
        let unit = self.next;
        self.next = (self.next + 1) % self.engines.len();
        self.engines[unit].softmax_row(scores)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl SoftmaxEngine for EngineBank {
    fn cost_sheet(&self) -> CostSheet {
        let mut sheet = CostSheet::new(self.name.clone());
        for (i, e) in self.engines.iter().enumerate() {
            let inner = e.cost_sheet();
            sheet.add(format!("engine {i}"), inner.total_area(), inner.total_power());
        }
        sheet
    }

    /// Effective per-row cost with rows interleaved across the bank:
    /// energy per row is one engine's, latency amortizes by the unit
    /// count (steady-state issue rate).
    fn row_cost(&self, n: usize) -> OpCost {
        let single = self.engines[0].row_cost(n);
        OpCost::new(single.energy, single.latency * (1.0 / self.engines.len() as f64))
    }

    fn format(&self) -> Option<QFormat> {
        Some(self.config().format)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank(units: usize) -> EngineBank {
        EngineBank::new(StarSoftmaxConfig::new(QFormat::CNEWS), units).expect("valid")
    }

    #[test]
    fn round_robin_dispatch() {
        let mut b = bank(3);
        assert_eq!(b.next_unit(), 0);
        let _ = b.softmax_row(&[1.0, 2.0]);
        assert_eq!(b.next_unit(), 1);
        let _ = b.softmax_row(&[1.0, 2.0]);
        let _ = b.softmax_row(&[1.0, 2.0]);
        assert_eq!(b.next_unit(), 0); // wrapped
    }

    #[test]
    fn identical_outputs_across_units() {
        let mut b = bank(4);
        let row = [0.5, -1.5, 2.25, 0.0];
        let outputs: Vec<Vec<f64>> = (0..4).map(|_| b.softmax_row(&row)).collect();
        for o in &outputs[1..] {
            assert_eq!(o, &outputs[0]); // ideal engines are identical
        }
    }

    #[test]
    fn cost_amortizes_latency_not_energy() {
        let single = bank(1);
        let quad = bank(4);
        let a = single.row_cost(128);
        let b = quad.row_cost(128);
        assert_eq!(a.energy.value(), b.energy.value());
        assert!((a.latency.value() / b.latency.value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn area_scales_with_units() {
        let a1 = bank(1).cost_sheet().total_area().value();
        let a4 = bank(4).cost_sheet().total_area().value();
        assert!((a4 / a1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_units_rejected() {
        assert!(EngineBank::new(StarSoftmaxConfig::new(QFormat::CNEWS), 0).is_err());
    }

    #[test]
    fn reports_shared_format() {
        let b = bank(2);
        assert_eq!(SoftmaxEngine::format(&b), Some(QFormat::CNEWS));
        assert_eq!(b.fault_events(), 0);
        assert!(b.name().contains("2x8bit"));
    }
}
