//! The baseline CMOS softmax unit of Table I.
//!
//! A conventional full-precision softmax accelerator: FP32 datapath,
//! three passes over the row (max reduction, exponentiate-and-accumulate,
//! divide), with `lanes` parallel element pipelines. The exponential is a
//! LUT-with-interpolation unit, the norm is an FP adder tree, and the
//! normalization uses FP dividers — the standard design that Softermax
//! (and STAR) are measured against.

use crate::engine::SoftmaxEngine;
use star_attention::RowSoftmax;
use star_crossbar::OpCost;
use star_device::peripherals::{BlockSpec, PeripheralLibrary};
use star_device::{CostSheet, Latency, TechnologyParams};

/// Full-precision CMOS softmax unit.
///
/// Functionally it evaluates softmax in `f32` (the quantization of a real
/// FP32 pipeline); its cost model is assembled from the 32 nm FP component
/// library.
///
/// # Examples
///
/// ```
/// use star_attention::RowSoftmax;
/// use star_core::CmosBaselineSoftmax;
///
/// let mut unit = CmosBaselineSoftmax::new(8);
/// let p = unit.softmax_row(&[0.0, 1.0]);
/// assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CmosBaselineSoftmax {
    lanes: usize,
    /// Row buffer capacity in elements (two ping-pong FP32 buffers).
    buffer_len: usize,
    tech: TechnologyParams,
    name: String,
}

impl CmosBaselineSoftmax {
    /// Creates a baseline unit with the given number of parallel lanes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(lanes: usize) -> Self {
        Self::with_buffer(lanes, 512)
    }

    /// Creates a unit with an explicit row-buffer capacity.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` or `buffer_len` is zero.
    pub fn with_buffer(lanes: usize, buffer_len: usize) -> Self {
        assert!(lanes > 0, "lane count must be positive");
        assert!(buffer_len > 0, "buffer length must be positive");
        CmosBaselineSoftmax {
            lanes,
            buffer_len,
            tech: TechnologyParams::cmos32(),
            name: format!("cmos-fp32-baseline-x{lanes}"),
        }
    }

    /// Number of parallel element lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// One lane's component bundle: comparator (an FP adder), exp unit,
    /// accumulator adder, divider.
    fn lane_blocks() -> [(&'static str, BlockSpec); 4] {
        [
            ("fp32 comparator", PeripheralLibrary::fp32_adder()),
            ("exp unit (lut+interp)", PeripheralLibrary::exp_unit(10)),
            ("fp32 accumulator", PeripheralLibrary::fp32_adder()),
            ("fp32 divider", PeripheralLibrary::fp32_divider()),
        ]
    }
}

impl RowSoftmax for CmosBaselineSoftmax {
    fn softmax_row(&mut self, scores: &[f64]) -> Vec<f64> {
        assert!(!scores.is_empty(), "softmax of an empty row is undefined");
        star_telemetry::count("cmos.softmax.rows", 1);
        // One max-compare, one exp, one div per element; one add per
        // element into the running sum.
        star_telemetry::count("cmos.softmax.exp_ops", scores.len() as u64);
        star_telemetry::count("cmos.softmax.div_ops", scores.len() as u64);
        // FP32 datapath: every intermediate is rounded to f32.
        let xs: Vec<f32> = scores.iter().map(|&x| x as f32).collect();
        let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = xs.iter().map(|&x| (x - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        exps.iter().map(|&e| (e / sum) as f64).collect()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl SoftmaxEngine for CmosBaselineSoftmax {
    fn cost_sheet(&self) -> CostSheet {
        let mut sheet = CostSheet::new(self.name.clone());
        for (name, block) in Self::lane_blocks() {
            let b = block.replicate(self.lanes);
            // All lanes busy while a row streams through.
            sheet.add(
                format!("{name} x{}", self.lanes),
                b.area(),
                block.average_power(1.0) * self.lanes as f64,
            );
        }
        // Two ping-pong FP32 row buffers.
        let kib = (self.buffer_len * 4) as f64 / 1024.0;
        let buf = PeripheralLibrary::sram(kib.max(0.25));
        sheet.add("row buffers x2", buf.area() * 2.0, buf.average_power(1.0) * 2.0);
        sheet
    }

    fn row_cost(&self, n: usize) -> OpCost {
        let cycles_per_pass = n.div_ceil(self.lanes) as f64;
        let clock = self.tech.cmos_clock_ns();
        let [cmp, exp, acc, div] = Self::lane_blocks().map(|(_, b)| b);
        // Pass 1: max reduction; pass 2: exp + accumulate; pass 3: divide
        // (the divider is multi-cycle but pipelined).
        let energy = cmp.energy_for_ops(n as u64)
            + exp.energy_for_ops(n as u64)
            + acc.energy_for_ops(n as u64)
            + div.energy_for_ops(n as u64);
        let latency = Latency::new(
            cycles_per_pass * clock // max pass
                + cycles_per_pass * exp.latency_per_op().value() // exp+acc pass
                + cycles_per_pass * clock + div.latency_per_op().value(), // divide pass
        );
        OpCost::new(energy, latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_attention::ExactSoftmax;

    #[test]
    fn matches_exact_to_fp32_precision() {
        let mut base = CmosBaselineSoftmax::new(8);
        let mut exact = ExactSoftmax::new();
        let scores = [1.7, -2.3, 0.4, 3.1, -0.9];
        let p = base.softmax_row(&scores);
        let q = exact.softmax_row(&scores);
        for (a, b) in p.iter().zip(&q) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn lanes_speed_up_rows() {
        let narrow = CmosBaselineSoftmax::new(1);
        let wide = CmosBaselineSoftmax::new(8);
        let ln = narrow.row_cost(128).latency.value();
        let lw = wide.row_cost(128).latency.value();
        assert!(ln > lw * 4.0, "narrow {ln} wide {lw}");
        // Energy is lane-independent (same work).
        assert!(
            (narrow.row_cost(128).energy.value() - wide.row_cost(128).energy.value()).abs() < 1e-9
        );
    }

    #[test]
    fn area_scales_with_lanes() {
        let a1 = CmosBaselineSoftmax::new(1).cost_sheet().total_area();
        let a8 = CmosBaselineSoftmax::new(8).cost_sheet().total_area();
        assert!(a8.value() > a1.value() * 4.0);
    }

    #[test]
    fn cost_sheet_dominated_by_fp_units() {
        let sheet = CmosBaselineSoftmax::new(8).cost_sheet();
        let dom = sheet.dominant_by_area().unwrap();
        assert!(dom.name.contains("exp") || dom.name.contains("divider"), "{}", dom.name);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_lanes_rejected() {
        let _ = CmosBaselineSoftmax::new(0);
    }

    #[test]
    fn name_mentions_lanes() {
        assert_eq!(CmosBaselineSoftmax::new(4).name(), "cmos-fp32-baseline-x4");
        assert_eq!(CmosBaselineSoftmax::new(4).lanes(), 4);
    }
}
