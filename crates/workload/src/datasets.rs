//! Calibrated synthetic score distributions standing in for the paper's
//! datasets (CNEWS, MRPC, CoLA).
//!
//! We cannot run BERT-base on the original corpora, but the paper's own
//! artifact — the minimal fixed-point format per dataset — pins exactly the
//! two properties of the attention-score distribution that matter to the
//! softmax engine:
//!
//! 1. **Dynamic range**: the largest |score| determines the integer bits
//!    (the paper's "6-bit integer" ⇒ scores reach beyond ±16 but stay
//!    within ±32 after the `1/√d` scale).
//! 2. **Fine structure**: the typical gap between competing top scores
//!    determines the fraction bits (a 2⁻² grid must still separate the
//!    contenders for MRPC's 3 fraction bits to be *required*, the gap must
//!    be finer than 2⁻²).
//!
//! Each [`DatasetProfile`] encodes those two calibration constants plus a
//! body spread, and [`DatasetProfile::generate_rows`] samples score rows
//! with (a) a Gaussian body, (b) occasional near-range peaks (so that one
//! fewer integer bit visibly clips), and (c) a near-tie pair at the
//! calibrated gap with the larger value at the higher index (so that one
//! fewer fraction bit visibly collapses the argmax).

use rand::Rng;
use serde::{Deserialize, Serialize};
use star_fixed::QFormat;
use std::fmt;

/// One of the paper's evaluation datasets (as a calibrated proxy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// CNEWS (Chinese news classification): paper format 8 bits = q5.2.
    Cnews,
    /// MRPC (paraphrase detection): paper format 9 bits = q5.3.
    Mrpc,
    /// CoLA (linguistic acceptability): paper format 7 bits = q4.2.
    Cola,
}

impl Dataset {
    /// All three datasets, in the paper's order.
    pub const ALL: [Dataset; 3] = [Dataset::Cnews, Dataset::Mrpc, Dataset::Cola];

    /// The calibrated distribution profile.
    pub fn profile(self) -> DatasetProfile {
        match self {
            Dataset::Cnews => DatasetProfile {
                dataset: self,
                body_sigma: 4.5,
                peak_score: 26.0,
                tie_gap: 0.30,
                peak_rate: 0.25,
            },
            Dataset::Mrpc => DatasetProfile {
                dataset: self,
                body_sigma: 4.0,
                peak_score: 27.0,
                tie_gap: 0.15,
                peak_rate: 0.25,
            },
            Dataset::Cola => DatasetProfile {
                dataset: self,
                body_sigma: 2.5,
                peak_score: 13.0,
                tie_gap: 0.30,
                peak_rate: 0.25,
            },
        }
    }

    /// The format the paper reports as required for this dataset.
    pub fn paper_format(self) -> QFormat {
        match self {
            Dataset::Cnews => QFormat::CNEWS,
            Dataset::Mrpc => QFormat::MRPC,
            Dataset::Cola => QFormat::COLA,
        }
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dataset::Cnews => write!(f, "CNEWS"),
            Dataset::Mrpc => write!(f, "MRPC"),
            Dataset::Cola => write!(f, "CoLA"),
        }
    }
}

/// Calibrated attention-score distribution for one dataset proxy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetProfile {
    /// The dataset this profile stands in for.
    pub dataset: Dataset,
    /// Standard deviation of the Gaussian score body.
    pub body_sigma: f64,
    /// Magnitude of the occasional near-range peak scores.
    pub peak_score: f64,
    /// Gap of the injected near-tie pair (the resolution requirement).
    pub tie_gap: f64,
    /// Fraction of rows that carry a peak pair.
    pub peak_rate: f64,
}

impl DatasetProfile {
    /// Generates `n_rows` score rows of `row_len` elements each.
    ///
    /// # Panics
    ///
    /// Panics if `row_len < 4` (rows need room for the calibration
    /// structure) or `n_rows` is zero.
    pub fn generate_rows<R: Rng + ?Sized>(
        &self,
        n_rows: usize,
        row_len: usize,
        rng: &mut R,
    ) -> Vec<Vec<f64>> {
        assert!(n_rows > 0, "need at least one row");
        assert!(row_len >= 4, "rows need at least 4 elements for the tie structure");
        (0..n_rows).map(|_| self.generate_row(row_len, rng)).collect()
    }

    /// Generates one score row.
    ///
    /// # Panics
    ///
    /// Panics if `row_len < 4`.
    pub fn generate_row<R: Rng + ?Sized>(&self, row_len: usize, rng: &mut R) -> Vec<f64> {
        assert!(row_len >= 4, "rows need at least 4 elements for the tie structure");
        let mut row: Vec<f64> =
            (0..row_len).map(|_| standard_normal(rng) * self.body_sigma).collect();

        // The row's contested top: a near-tie at the calibrated gap, with
        // the true winner at the *higher* index so a quantization collapse
        // flips the argmax.
        let base = row.iter().copied().fold(f64::NEG_INFINITY, f64::max) + 1.0;
        let i = rng.gen_range(0..row_len / 2);
        let j = rng.gen_range(row_len / 2..row_len);
        // Jitter the pair off the quantization grid.
        let jitter: f64 = rng.gen_range(0.0..0.1);
        if rng.gen_bool(self.peak_rate) {
            // Peak pair near the range limit: one fewer integer bit clips
            // both to the same saturated code.
            row[i] = self.peak_score + jitter;
            row[j] = self.peak_score + jitter + self.tie_gap;
        } else {
            row[i] = base + jitter;
            row[j] = base + jitter + self.tie_gap;
        }
        row
    }

    /// The largest |score| this profile can emit.
    pub fn max_abs_score(&self) -> f64 {
        self.peak_score + 0.1 + self.tie_gap
    }
}

/// Box–Muller standard normal sample.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0xDA7A)
    }

    #[test]
    fn profiles_have_expected_formats() {
        assert_eq!(Dataset::Cnews.paper_format().total_bits(), 8);
        assert_eq!(Dataset::Mrpc.paper_format().total_bits(), 9);
        assert_eq!(Dataset::Cola.paper_format().total_bits(), 7);
    }

    #[test]
    fn ranges_match_required_int_bits() {
        for ds in Dataset::ALL {
            let p = ds.profile();
            let fmt = ds.paper_format();
            // The profile's peaks must exceed the range of one fewer
            // integer bit but stay within the paper format's range.
            let smaller = 2f64.powi(fmt.int_bits() as i32 - 1);
            assert!(p.peak_score > smaller, "{ds}: peaks inside the smaller format");
            assert!(p.max_abs_score() < fmt.max_value(), "{ds}: peaks clip in paper format");
        }
    }

    #[test]
    fn tie_gaps_match_required_frac_bits() {
        for ds in Dataset::ALL {
            let p = ds.profile();
            let fmt = ds.paper_format();
            let res = fmt.resolution();
            // Resolvable at the paper resolution, collapsible one bit lower.
            assert!(p.tie_gap > res, "{ds}: gap not resolvable at paper format");
            assert!(p.tie_gap < 2.0 * res, "{ds}: gap resolvable with one fewer bit");
        }
    }

    #[test]
    fn generated_rows_within_range() {
        let mut r = rng();
        for ds in Dataset::ALL {
            let p = ds.profile();
            let rows = p.generate_rows(50, 64, &mut r);
            assert_eq!(rows.len(), 50);
            for row in &rows {
                assert_eq!(row.len(), 64);
                for &s in row {
                    assert!(s.abs() <= p.max_abs_score().max(p.body_sigma * 6.0), "{ds}: {s}");
                }
            }
        }
    }

    #[test]
    fn rows_contain_tie_structure() {
        let mut r = rng();
        let p = Dataset::Mrpc.profile();
        let mut peak_rows = 0;
        for _ in 0..200 {
            let row = p.generate_row(32, &mut r);
            // The two largest values are the injected pair at tie_gap.
            let mut sorted = row.clone();
            sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
            let gap = sorted[0] - sorted[1];
            assert!((gap - p.tie_gap).abs() < 1e-9, "gap {gap}");
            // The winner sits in the upper half of the row.
            let winner = star_attention::argmax(&row);
            assert!(winner >= 16);
            if sorted[0] > p.peak_score {
                peak_rows += 1;
            }
        }
        // Peak rate ≈ 25 %.
        assert!((20..=80).contains(&peak_rows), "{peak_rows}");
    }

    #[test]
    fn deterministic_given_seed() {
        let p = Dataset::Cola.profile();
        let a = p.generate_rows(3, 16, &mut rng());
        let b = p.generate_rows(3, 16, &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn tiny_rows_rejected() {
        let p = Dataset::Cnews.profile();
        let _ = p.generate_row(3, &mut rng());
    }

    #[test]
    fn display_names() {
        assert_eq!(Dataset::Cnews.to_string(), "CNEWS");
        assert_eq!(Dataset::Mrpc.to_string(), "MRPC");
        assert_eq!(Dataset::Cola.to_string(), "CoLA");
    }
}
