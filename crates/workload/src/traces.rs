//! Score traces and workload helpers.

use crate::Dataset;
use rand::Rng;
use serde::{Deserialize, Serialize};
use star_attention::Matrix;
use star_fixed::RangeAnalyzer;

/// A captured set of attention-score rows for one dataset proxy — the unit
/// the precision study (E4) consumes and the experiment harnesses persist
/// as JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoreTrace {
    /// Which dataset proxy generated the trace.
    pub dataset: Dataset,
    /// RNG seed used.
    pub seed: u64,
    /// The score rows.
    pub rows: Vec<Vec<f64>>,
}

impl ScoreTrace {
    /// Generates a trace from a dataset's calibrated profile.
    ///
    /// # Panics
    ///
    /// Panics if `n_rows` is zero or `row_len < 4`.
    pub fn generate(dataset: Dataset, n_rows: usize, row_len: usize, seed: u64) -> Self {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let rows = dataset.profile().generate_rows(n_rows, row_len, &mut rng);
        ScoreTrace { dataset, seed, rows }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the trace holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Feeds every score into a fresh [`RangeAnalyzer`] (the §II range
    /// measurement).
    pub fn analyze(&self) -> RangeAnalyzer {
        let mut an = RangeAnalyzer::new();
        for row in &self.rows {
            an.observe_all(row.iter().copied());
        }
        an
    }

    /// Largest |score| in the trace.
    pub fn max_abs(&self) -> f64 {
        self.rows.iter().flatten().map(|s| s.abs()).fold(0.0, f64::max)
    }
}

/// A random matrix with entries uniform in `[-scale, scale]` — Q/K/V inputs
/// for end-to-end attention tests.
///
/// # Panics
///
/// Panics if dimensions are zero or `scale` is not positive.
pub fn random_matrix<R: Rng + ?Sized>(rows: usize, cols: usize, scale: f64, rng: &mut R) -> Matrix {
    assert!(scale > 0.0, "scale must be positive");
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-scale..scale))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn trace_generation_deterministic() {
        let a = ScoreTrace::generate(Dataset::Cnews, 10, 32, 7);
        let b = ScoreTrace::generate(Dataset::Cnews, 10, 32, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert!(!a.is_empty());
        let c = ScoreTrace::generate(Dataset::Cnews, 10, 32, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn analyze_counts_everything() {
        let t = ScoreTrace::generate(Dataset::Cola, 5, 16, 1);
        let an = t.analyze();
        assert_eq!(an.count(), 80);
        assert!(an.max_seen() <= t.max_abs());
    }

    #[test]
    fn max_abs_sane() {
        let t = ScoreTrace::generate(Dataset::Mrpc, 50, 64, 2);
        let m = t.max_abs();
        assert!(m > 16.0, "MRPC peaks must exceed the 4-int-bit range, got {m}");
        assert!(m < 32.0, "MRPC scores must fit 5 integer bits, got {m}");
    }

    #[test]
    fn random_matrix_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let m = random_matrix(8, 4, 2.0, &mut rng);
        assert_eq!(m.shape(), (8, 4));
        assert!(m.as_slice().iter().all(|&v| v.abs() < 2.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn random_matrix_rejects_bad_scale() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let _ = random_matrix(2, 2, 0.0, &mut rng);
    }

    #[test]
    fn serde_round_trip() {
        let t = ScoreTrace::generate(Dataset::Cola, 2, 8, 5);
        let json = serde_json::to_string(&t).expect("serialize");
        let back: ScoreTrace = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(t.dataset, back.dataset);
        assert_eq!(t.seed, back.seed);
        // serde_json's default float path is accurate to ~1 ULP; exact
        // round-trips would need its `float_roundtrip` feature.
        for (a, b) in t.rows.iter().flatten().zip(back.rows.iter().flatten()) {
            assert!((a - b).abs() <= a.abs() * 1e-15);
        }
    }
}
