//! Calibrated synthetic workloads for the STAR reproduction.
//!
//! The paper evaluates on BERT-base attention scores from three corpora
//! (CNEWS, MRPC, CoLA) that we cannot run; this crate substitutes
//! distribution-calibrated synthetic score generators whose dynamic range
//! and fine structure reproduce exactly the properties that drive the
//! paper's per-dataset bitwidth results (see DESIGN.md §4 and the
//! [`DatasetProfile`] docs for the calibration argument).
//!
//! # Examples
//!
//! ```
//! use star_workload::{Dataset, ScoreTrace};
//!
//! let trace = ScoreTrace::generate(Dataset::Mrpc, 16, 64, 42);
//! assert_eq!(trace.len(), 16);
//! // MRPC peaks need 5 integer bits (beyond ±16, within ±32).
//! assert!(trace.max_abs() > 16.0 && trace.max_abs() < 32.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capture;
mod datasets;
mod traces;

pub use capture::CapturedScores;
pub use datasets::{Dataset, DatasetProfile};
pub use traces::{random_matrix, ScoreTrace};
