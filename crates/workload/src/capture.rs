//! Score capture from an executed transformer: the "real" counterpart of
//! the calibrated synthetic profiles — run an encoder stack on synthetic
//! embeddings and harvest the pre-softmax attention scores, exactly the way
//! the paper's §II analysis harvests BERT-base scores.

use crate::ScoreTrace;
use rand::Rng;
use star_attention::{encoder_stack, AttentionConfig, EncoderLayerParams, Matrix, RowSoftmax};

/// Captured attention scores from every layer/head/query of an encoder
/// stack run.
#[derive(Debug, Clone, PartialEq)]
pub struct CapturedScores {
    /// One row per (layer, head, query) triple.
    pub rows: Vec<Vec<f64>>,
    /// The configuration the stack ran at.
    pub config: AttentionConfig,
}

impl CapturedScores {
    /// Runs an encoder stack on the given input and captures every score
    /// row.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the stack.
    pub fn run<S: RowSoftmax + ?Sized>(
        config: &AttentionConfig,
        layers: &[EncoderLayerParams],
        input: &Matrix,
        softmax: &mut S,
    ) -> Result<Self, star_attention::ShapeError> {
        let (_, per_layer_scores) = encoder_stack(config, layers, input, softmax)?;
        let mut rows = Vec::new();
        for scores in &per_layer_scores {
            for r in 0..scores.rows() {
                rows.push(scores.row(r).to_vec());
            }
        }
        Ok(CapturedScores { rows, config: *config })
    }

    /// Generates a full synthetic-model capture: random Xavier-initialized
    /// encoder layers on random embeddings, deterministic in `seed`.
    ///
    /// The raw scores of an untrained random transformer are much smaller
    /// than trained BERT scores; `score_scale` stretches them to a trained
    /// dynamic range (the §II calibration uses the dataset profiles for
    /// that instead — this capture exists to validate the *shape* of real
    /// score distributions end to end).
    ///
    /// # Errors
    ///
    /// Propagates shape errors (none occur for valid configs).
    pub fn synthetic<S: RowSoftmax + ?Sized>(
        config: &AttentionConfig,
        softmax: &mut S,
        seed: u64,
    ) -> Result<Self, star_attention::ShapeError> {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let layers: Vec<EncoderLayerParams> =
            (0..config.num_layers).map(|_| EncoderLayerParams::random(config, &mut rng)).collect();
        let input =
            Matrix::from_fn(config.seq_len, config.d_model, |_, _| rng.gen::<f64>() * 2.0 - 1.0);
        Self::run(config, &layers, &input, softmax)
    }

    /// Number of captured rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Converts into a [`ScoreTrace`] tagged with a dataset label (for
    /// feeding the same analysis pipeline as the synthetic profiles).
    pub fn into_trace(self, dataset: crate::Dataset, seed: u64) -> ScoreTrace {
        ScoreTrace { dataset, seed, rows: self.rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_attention::ExactSoftmax;

    fn cfg() -> AttentionConfig {
        AttentionConfig { d_model: 16, num_heads: 2, seq_len: 6, num_layers: 2, d_ff: 32 }
    }

    #[test]
    fn capture_counts_all_rows() {
        let c = cfg();
        let cap = CapturedScores::synthetic(&c, &mut ExactSoftmax::new(), 3).expect("runs");
        // layers × heads × seq rows.
        assert_eq!(cap.len(), 2 * 2 * 6);
        assert!(!cap.is_empty());
        for row in &cap.rows {
            assert_eq!(row.len(), 6);
            assert!(row.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn capture_deterministic() {
        let c = cfg();
        let a = CapturedScores::synthetic(&c, &mut ExactSoftmax::new(), 9).expect("runs");
        let b = CapturedScores::synthetic(&c, &mut ExactSoftmax::new(), 9).expect("runs");
        assert_eq!(a, b);
        let c2 = CapturedScores::synthetic(&c, &mut ExactSoftmax::new(), 10).expect("runs");
        assert_ne!(a, c2);
    }

    #[test]
    fn into_trace_analyzable() {
        let c = cfg();
        let cap = CapturedScores::synthetic(&c, &mut ExactSoftmax::new(), 1).expect("runs");
        let n = cap.len() as u64;
        let trace = cap.into_trace(crate::Dataset::Cola, 1);
        let an = trace.analyze();
        assert_eq!(an.count(), n * 6);
        // Untrained scores concentrate near zero (the LayerNorm keeps
        // activations bounded).
        assert!(trace.max_abs() < 16.0, "{}", trace.max_abs());
    }
}
