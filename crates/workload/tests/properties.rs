//! Property-based tests for the workload generators.

use proptest::prelude::*;
use star_workload::{Dataset, ScoreTrace};

fn datasets() -> impl Strategy<Value = Dataset> {
    prop::sample::select(Dataset::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn traces_respect_calibrated_bounds(ds in datasets(), seed in 0u64..10_000) {
        let trace = ScoreTrace::generate(ds, 16, 48, seed);
        let profile = ds.profile();
        let fmt = ds.paper_format();
        prop_assert_eq!(trace.len(), 16);
        // Nothing leaves the paper format's representable range.
        prop_assert!(trace.max_abs() <= profile.max_abs_score().max(profile.body_sigma * 8.0));
        prop_assert!(profile.max_abs_score() < fmt.max_value());
    }

    #[test]
    fn tie_structure_always_present(ds in datasets(), seed in 0u64..10_000) {
        let trace = ScoreTrace::generate(ds, 4, 32, seed);
        let gap = ds.profile().tie_gap;
        for row in &trace.rows {
            let mut sorted = row.clone();
            sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
            prop_assert!((sorted[0] - sorted[1] - gap).abs() < 1e-9, "gap {}", sorted[0] - sorted[1]);
            // The winner sits in the upper half (so collapses flip argmax).
            let winner = star_attention::argmax(row);
            prop_assert!(winner >= row.len() / 2);
        }
    }

    #[test]
    fn determinism(ds in datasets(), seed in 0u64..1_000) {
        let a = ScoreTrace::generate(ds, 3, 16, seed);
        let b = ScoreTrace::generate(ds, 3, 16, seed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn analyzer_counts_and_range(ds in datasets(), rows in 1usize..8, len in 4usize..32) {
        let trace = ScoreTrace::generate(ds, rows, len, 1);
        let an = trace.analyze();
        prop_assert_eq!(an.count(), (rows * len) as u64);
        prop_assert!(an.max_seen() <= trace.max_abs() + 1e-12);
        prop_assert!(an.min_seen() >= -trace.max_abs() - 1e-12);
    }

    #[test]
    fn paper_format_is_minimal_for_profile(ds in datasets()) {
        // The calibrated profile's range requires exactly the paper
        // format's integer bits: peaks exceed the next-smaller format.
        let p = ds.profile();
        let fmt = ds.paper_format();
        let smaller_max = 2f64.powi(fmt.int_bits() as i32 - 1);
        prop_assert!(p.peak_score > smaller_max);
        prop_assert!(p.max_abs_score() < fmt.max_value());
        // And the tie gap requires exactly the paper's fraction bits.
        prop_assert!(p.tie_gap > fmt.resolution());
        prop_assert!(p.tie_gap < 2.0 * fmt.resolution());
    }
}
