//! Property-based tests for the executor's determinism contract: for any
//! input and any worker count, `par_map` / `par_chunks` are byte-identical
//! to the serial path, and `scope` runs every task exactly once.

use proptest::prelude::*;
use star_exec::Executor;
use std::sync::atomic::{AtomicU64, Ordering};

/// Worker counts exercised everywhere: the serial fallback, a small pool,
/// and an oversubscribed pool (more workers than this machine has cores).
const WORKER_COUNTS: [usize; 4] = [1, 2, 3, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn par_map_is_bit_identical_across_worker_counts(
        xs in prop::collection::vec(-1e3f64..1e3, 0..64),
    ) {
        // A transcendental per-item function: if scheduling affected order
        // of evaluation *within* an item, bits would move.
        let serial: Vec<f64> = xs.iter().map(|&x| (x.sin() * 1e3).exp().sqrt()).collect();
        for workers in WORKER_COUNTS {
            let par = Executor::new(workers).par_map(&xs, |_, &x| (x.sin() * 1e3).exp().sqrt());
            // Compare raw bits, not approximate equality.
            let serial_bits: Vec<u64> = serial.iter().map(|v| v.to_bits()).collect();
            let par_bits: Vec<u64> = par.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(serial_bits, par_bits, "workers={}", workers);
        }
    }

    #[test]
    fn par_map_indices_match_positions(
        n in 0usize..80,
        workers in 1usize..9,
    ) {
        let items: Vec<usize> = (0..n).collect();
        let out = Executor::new(workers).par_map(&items, |i, &x| (i, x));
        prop_assert_eq!(out.len(), n);
        for (pos, (i, x)) in out.iter().enumerate() {
            prop_assert_eq!(pos, *i);
            prop_assert_eq!(pos, *x);
        }
    }

    #[test]
    fn par_chunks_equals_serial_chunking(
        xs in prop::collection::vec(0u32..1000, 0..100),
        chunk in 1usize..17,
        workers in 1usize..9,
    ) {
        let serial: Vec<u64> =
            xs.chunks(chunk).map(|c| c.iter().map(|&v| u64::from(v)).sum()).collect();
        let par = Executor::new(workers)
            .par_chunks(&xs, chunk, |_, c| c.iter().map(|&v| u64::from(v)).sum::<u64>());
        prop_assert_eq!(serial, par);
    }

    #[test]
    fn scope_runs_each_task_exactly_once(
        n in 0usize..64,
        workers in 1usize..9,
    ) {
        let counters: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        Executor::new(workers).scope(|s| {
            for c in &counters {
                s.spawn(|| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        for (i, c) in counters.iter().enumerate() {
            prop_assert_eq!(c.load(Ordering::Relaxed), 1, "task {}", i);
        }
    }
}
