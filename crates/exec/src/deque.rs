//! The per-worker work-stealing deque.
//!
//! Shaped like the crossbeam/Chase–Lev deque — the owning worker treats its
//! end as a LIFO stack (good cache locality: the most recently produced
//! task is the hottest), while thieves take from the opposite end (FIFO:
//! they grab the *oldest* task, which in a block-partitioned schedule is
//! the start of the largest remaining contiguous run).
//!
//! The lock-free Chase–Lev algorithm needs `unsafe` for its raw circular
//! buffer; the workspace is `#![forbid(unsafe_code)]` and dependency-free,
//! so this implementation guards a `VecDeque` with a `Mutex` instead. The
//! *scheduling* behaviour (owner-LIFO / thief-FIFO) is identical, and for
//! the coarse-grained tasks this workspace runs (whole attention heads,
//! whole engine configurations, whole experiment processes) the lock is
//! never contended long enough to matter.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A double-ended work queue owned by one worker and stolen from by the
/// rest.
#[derive(Debug, Default)]
pub struct WorkDeque<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> WorkDeque<T> {
    /// An empty deque.
    pub fn new() -> Self {
        WorkDeque { queue: Mutex::new(VecDeque::new()) }
    }

    /// A deque pre-loaded with `items` (front = first to be stolen,
    /// back = first to be popped by the owner).
    pub fn seeded(items: impl IntoIterator<Item = T>) -> Self {
        WorkDeque { queue: Mutex::new(items.into_iter().collect()) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        // Tasks run *outside* the lock, so a panicking task can never
        // poison the deque mid-mutation; recover the guard.
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Owner side: push a task onto the hot end.
    pub fn push(&self, item: T) {
        self.lock().push_back(item);
    }

    /// Owner side: pop the most recently pushed task (LIFO).
    pub fn pop(&self) -> Option<T> {
        self.lock().pop_back()
    }

    /// Thief side: steal the oldest task (FIFO).
    pub fn steal(&self) -> Option<T> {
        self.lock().pop_front()
    }

    /// Number of queued tasks (snapshot; may be stale by the time the
    /// caller acts on it).
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when no task is queued (snapshot).
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let d = WorkDeque::new();
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.pop(), Some(3), "owner pops the hot end");
        assert_eq!(d.steal(), Some(1), "thief steals the cold end");
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), None);
    }

    #[test]
    fn seeded_preserves_order() {
        let d = WorkDeque::seeded(0..4);
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert_eq!(d.steal(), Some(0));
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn survives_concurrent_stealing() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let d = WorkDeque::seeded(0..1000usize);
        let taken = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    while d.steal().is_some() {
                        taken.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            while d.pop().is_some() {
                taken.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(taken.load(Ordering::Relaxed), 1000, "every task taken exactly once");
        assert!(d.is_empty());
    }
}
