//! The executor: fork–join parallel regions with deterministic,
//! index-ordered reduction.

use crate::deque::WorkDeque;
use std::sync::Mutex;

/// Hard ceiling on worker threads, guarding against absurd
/// `STAR_EXEC_THREADS` values.
pub const MAX_THREADS: usize = 256;

/// Environment variable overriding the worker count for
/// [`Executor::from_env`].
pub const THREADS_ENV: &str = "STAR_EXEC_THREADS";

/// A fork–join executor over a fixed worker count.
///
/// Every parallel region spawns its workers inside [`std::thread::scope`],
/// so closures may borrow from the caller and no `unsafe` lifetime erasure
/// is needed; the tasks themselves are distributed through per-worker
/// work-stealing deques ([`WorkDeque`]). Spawning a handful of OS threads
/// per region costs tens of microseconds — noise next to the
/// coarse-grained tasks this workspace runs (whole attention heads, whole
/// engine configurations, whole experiment processes).
///
/// # Determinism
///
/// Results are written into per-index slots and reduced in index order, so
/// the output of [`Executor::par_map`] / [`Executor::par_chunks`] is
/// **byte-identical for any worker count** (including the serial `1`
/// fallback) whenever the task function itself is deterministic per index.
/// Work stealing only changes *which worker* runs a task, never what the
/// task computes or where its result lands.
///
/// # Examples
///
/// ```
/// use star_exec::Executor;
///
/// let exec = Executor::new(4);
/// let squares = exec.par_map(&[1, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// assert_eq!(squares, Executor::serial().par_map(&[1, 2, 3, 4], |_, &x| x * x));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// An executor with exactly `threads` workers (clamped to
    /// `1..=`[`MAX_THREADS`]).
    pub fn new(threads: usize) -> Self {
        Executor { threads: threads.clamp(1, MAX_THREADS) }
    }

    /// The single-worker executor: every parallel region degenerates to a
    /// plain index-ordered loop on the calling thread.
    pub fn serial() -> Self {
        Executor { threads: 1 }
    }

    /// Worker count from the environment: `STAR_EXEC_THREADS` if set and
    /// parseable (unparseable or zero values fall back to the serial
    /// worker=1 executor, never panic), else the machine's available
    /// parallelism, else 1.
    pub fn from_env() -> Self {
        match std::env::var(THREADS_ENV) {
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(n) if n >= 1 => Executor::new(n),
                _ => Executor::serial(),
            },
            Err(_) => {
                Executor::new(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
            }
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` in parallel, returning results in **input
    /// order**. `f` receives `(index, &item)`.
    ///
    /// # Panics
    ///
    /// Propagates the first worker panic after all workers have joined.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.run_indexed(items.len(), |i| f(i, &items[i]))
    }

    /// Maps `f` over contiguous chunks of at most `chunk_size` items,
    /// returning per-chunk results in chunk order. `f` receives
    /// `(chunk_index, chunk_slice)`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`; propagates worker panics.
    pub fn par_chunks<T, R, F>(&self, items: &[T], chunk_size: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        assert!(chunk_size > 0, "chunk_size must be at least 1");
        let n_chunks = items.len().div_ceil(chunk_size);
        self.run_indexed(n_chunks, |c| {
            let start = c * chunk_size;
            let end = (start + chunk_size).min(items.len());
            f(c, &items[start..end])
        })
    }

    /// Runs a batch of heterogeneous fire-and-forget tasks: `build` spawns
    /// closures onto the [`Scope`], then all of them execute across the
    /// workers and `scope` returns once every task has finished.
    ///
    /// Tasks may borrow from the enclosing environment (they only need to
    /// outlive this call). With one worker they run in spawn order on the
    /// calling thread; tasks communicate results through their own shared
    /// state (use [`Executor::par_map`] when a value per task is wanted).
    pub fn scope<'env, B>(&self, build: B)
    where
        B: FnOnce(&mut Scope<'env>),
    {
        let mut scope = Scope { tasks: Vec::new() };
        build(&mut scope);
        let tasks = scope.tasks;
        let n = tasks.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            for task in tasks {
                task();
            }
            return;
        }
        let deques: Vec<WorkDeque<Task<'env>>> = partition(tasks, workers);
        std::thread::scope(|s| {
            for w in 0..workers {
                let deques = &deques;
                s.spawn(move || {
                    while let Some(task) = next_task(deques, w) {
                        task();
                    }
                });
            }
        });
    }

    /// The shared fork–join engine: `n` independent index-addressed tasks,
    /// results reduced in index order.
    fn run_indexed<R, G>(&self, n: usize, g: G) -> Vec<R>
    where
        R: Send,
        G: Fn(usize) -> R + Sync,
    {
        let workers = self.threads.min(n);
        if workers <= 1 {
            return (0..n).map(g).collect();
        }
        let deques: Vec<WorkDeque<usize>> = partition(0..n, workers);
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for w in 0..workers {
                let deques = &deques;
                let slots = &slots;
                let g = &g;
                s.spawn(move || {
                    while let Some(i) = next_task(deques, w) {
                        let r = g(i);
                        *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
                    }
                });
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .unwrap_or_else(|| panic!("task {i} was never executed"))
            })
            .collect()
    }
}

impl Default for Executor {
    /// Same as [`Executor::from_env`].
    fn default() -> Self {
        Executor::from_env()
    }
}

/// A boxed task queued on a [`Scope`].
type Task<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Collector for the heterogeneous tasks of one [`Executor::scope`] call.
pub struct Scope<'env> {
    tasks: Vec<Task<'env>>,
}

impl<'env> Scope<'env> {
    /// Queues `task` for execution when the scope runs.
    pub fn spawn(&mut self, task: impl FnOnce() + Send + 'env) {
        self.tasks.push(Box::new(task));
    }

    /// Number of tasks queued so far.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when nothing has been spawned.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

impl std::fmt::Debug for Scope<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope").field("tasks", &self.tasks.len()).finish()
    }
}

/// Distributes `items` across `workers` deques in contiguous blocks (the
/// first `len % workers` blocks get one extra item). Contiguous blocks keep
/// the owner walking sequential indices (cache-friendly) while thieves
/// steal from the *front* of another worker's block — the index furthest
/// from where the owner is working.
fn partition<T>(items: impl IntoIterator<Item = T>, workers: usize) -> Vec<WorkDeque<T>> {
    let items: Vec<T> = items.into_iter().collect();
    let n = items.len();
    let base = n / workers;
    let extra = n % workers;
    let mut deques = Vec::with_capacity(workers);
    let mut iter = items.into_iter();
    for w in 0..workers {
        let take = base + usize::from(w < extra);
        deques.push(WorkDeque::seeded(iter.by_ref().take(take)));
    }
    deques
}

/// One scheduling step for worker `me`: prefer the own deque (LIFO), then
/// scan the victims round-robin starting at the right-hand neighbour
/// (FIFO steal). Returns `None` only when every deque is empty — correct
/// as a termination condition because a parallel region's task set is
/// fixed before the workers start.
fn next_task<T>(deques: &[WorkDeque<T>], me: usize) -> Option<T> {
    if let Some(task) = deques[me].pop() {
        return Some(task);
    }
    let n = deques.len();
    (1..n).find_map(|k| deques[(me + k) % n].steal())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_preserves_input_order() {
        for threads in [1, 2, 3, 8] {
            let exec = Executor::new(threads);
            let input: Vec<usize> = (0..37).collect();
            let out = exec.par_map(&input, |i, &x| {
                assert_eq!(i, x);
                x * 10
            });
            assert_eq!(out, (0..37).map(|x| x * 10).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn par_map_empty_and_singleton() {
        let exec = Executor::new(8);
        let empty: Vec<u32> = vec![];
        assert!(exec.par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(exec.par_map(&[5], |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn par_chunks_covers_every_item_once() {
        let exec = Executor::new(4);
        let input: Vec<usize> = (0..103).collect();
        let sums = exec.par_chunks(&input, 10, |c, chunk| {
            assert!(chunk.len() <= 10);
            assert_eq!(chunk[0], c * 10);
            chunk.iter().sum::<usize>()
        });
        assert_eq!(sums.len(), 11, "ceil(103/10) chunks");
        assert_eq!(sums.iter().sum::<usize>(), (0..103).sum::<usize>());
    }

    #[test]
    #[should_panic(expected = "chunk_size")]
    fn par_chunks_rejects_zero() {
        Executor::serial().par_chunks(&[1, 2, 3], 0, |_, c| c.len());
    }

    #[test]
    fn scope_runs_every_task() {
        for threads in [1, 4] {
            let exec = Executor::new(threads);
            let hits = AtomicUsize::new(0);
            exec.scope(|s| {
                assert!(s.is_empty());
                for _ in 0..25 {
                    s.spawn(|| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
                assert_eq!(s.len(), 25);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 25, "threads={threads}");
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let exec = Executor::new(2);
        let input: Vec<usize> = (0..8).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec.par_map(&input, |_, &x| {
                assert!(x != 5, "boom at 5");
                x
            })
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn clamps_thread_count() {
        assert_eq!(Executor::new(0).threads(), 1);
        assert_eq!(Executor::new(1_000_000).threads(), MAX_THREADS);
        assert_eq!(Executor::serial().threads(), 1);
    }

    #[test]
    fn from_env_parses_and_falls_back() {
        // Decide purely through the parse helper semantics: set/unset of a
        // process-global env var in parallel tests is racy, so exercise
        // `new`'s clamping plus a temp-var round trip guarded to this test.
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(Executor::from_env().threads(), 3);
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert_eq!(Executor::from_env().threads(), 1, "garbage falls back to serial");
        std::env::set_var(THREADS_ENV, "0");
        assert_eq!(Executor::from_env().threads(), 1, "zero falls back to serial");
        std::env::remove_var(THREADS_ENV);
        assert!(Executor::from_env().threads() >= 1);
    }

    #[test]
    fn partition_is_balanced_and_ordered() {
        let deques = partition(0..10, 3);
        let blocks: Vec<Vec<usize>> =
            deques.iter().map(|d| std::iter::from_fn(|| d.steal()).collect::<Vec<_>>()).collect();
        assert_eq!(blocks, vec![vec![0, 1, 2, 3], vec![4, 5, 6], vec![7, 8, 9]]);
    }
}
