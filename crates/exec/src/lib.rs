//! star-exec: the deterministic work-stealing parallel execution layer.
//!
//! Every hot path of the STAR reproduction that is *device-math-free* —
//! per-head attention, per-row softmax dispatch, design-space sweeps, the
//! experiment fan-out — is embarrassingly parallel (the paper's own
//! pipeline exploits exactly this vector-grained head/row parallelism in
//! hardware). This crate provides the shared substrate:
//!
//! - [`Executor`] — a fork–join executor with a fixed worker count,
//!   configured explicitly ([`Executor::new`]) or from the
//!   `STAR_EXEC_THREADS` environment variable ([`Executor::from_env`]),
//! - [`Executor::par_map`] / [`Executor::par_chunks`] — data-parallel maps
//!   with **deterministic, index-ordered reduction**,
//! - [`Executor::scope`] — heterogeneous fork–join task batches,
//! - [`WorkDeque`] — the per-worker owner-LIFO / thief-FIFO deque
//!   (crossbeam-style semantics, implemented locally and lock-based so the
//!   workspace stays `#![forbid(unsafe_code)]` and dependency-free).
//!
//! # Determinism contract
//!
//! Same inputs ⇒ byte-identical outputs **regardless of worker count**.
//! Work stealing reassigns *who* runs a task, never what it computes:
//! results land in per-index slots and are reduced in index order, and the
//! single-worker fallback is a plain ordered loop. Telemetry recorded by
//! worker tasks is captured per task via `star_telemetry::with_scoped` at
//! the call sites and folded into the parent registry with the commutative
//! `Registry::merge`, so metric totals are also independent of scheduling.
//!
//! # Example
//!
//! ```
//! use star_exec::Executor;
//!
//! let a = Executor::new(8).par_map(&[1.0f64, 2.0, 3.0], |_, x| x.exp());
//! let b = Executor::serial().par_map(&[1.0f64, 2.0, 3.0], |_, x| x.exp());
//! assert_eq!(a, b); // bit-identical, not just approximately equal
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod deque;
mod executor;

pub use deque::WorkDeque;
pub use executor::{Executor, Scope, MAX_THREADS, THREADS_ENV};
