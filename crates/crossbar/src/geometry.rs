//! Crossbar array geometry and shared cost accounting.

use serde::{Deserialize, Serialize};
use star_device::{Area, Energy, Latency, TechnologyParams};
use std::fmt;

/// Rows × columns shape of a crossbar array.
///
/// # Examples
///
/// ```
/// use star_crossbar::Geometry;
///
/// // The paper's CAM/SUB crossbar for 9-bit data: 512 rows, 18 columns.
/// let g = Geometry::new(512, 18);
/// assert_eq!(g.cells(), 9216);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Geometry {
    rows: usize,
    cols: usize,
}

impl Geometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or exceeds 65 536 (beyond any
    /// practical array).
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "crossbar dimensions must be positive");
        assert!(rows <= 65_536 && cols <= 65_536, "crossbar dimension too large");
        Geometry { rows, cols }
    }

    /// Number of wordlines.
    pub fn rows(self) -> usize {
        self.rows
    }

    /// Number of bitlines.
    pub fn cols(self) -> usize {
        self.cols
    }

    /// Total cell count.
    pub fn cells(self) -> usize {
        self.rows * self.cols
    }

    /// Silicon area of the bare cell array under the technology's cell
    /// footprint (periphery is accounted separately per array type).
    pub fn cell_array_area(self, tech: &TechnologyParams) -> Area {
        tech.rram_cell_area() * self.cells() as f64
    }
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// Energy and latency of one array operation.
///
/// Operations on crossbars return their result alongside nothing; cost is
/// queried via per-op cost methods and accumulated in each array's
/// [`Ledger`]. `OpCost` is the unit of exchange between the functional
/// simulators and the architecture models.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OpCost {
    /// Dynamic energy of the operation.
    pub energy: Energy,
    /// Latency of the operation.
    pub latency: Latency,
}

impl OpCost {
    /// The free operation.
    pub const ZERO: OpCost = OpCost { energy: Energy::ZERO, latency: Latency::ZERO };

    /// Creates an op cost.
    pub fn new(energy: Energy, latency: Latency) -> Self {
        OpCost { energy, latency }
    }

    /// Sequential composition: energies add, latencies add.
    pub fn then(self, next: OpCost) -> OpCost {
        OpCost { energy: self.energy + next.energy, latency: self.latency + next.latency }
    }

    /// Parallel composition: energies add, latency is the maximum.
    pub fn alongside(self, other: OpCost) -> OpCost {
        OpCost {
            energy: self.energy + other.energy,
            latency: if self.latency >= other.latency { self.latency } else { other.latency },
        }
    }

    /// `n` back-to-back repetitions.
    pub fn repeat(self, n: u64) -> OpCost {
        OpCost { energy: self.energy * n as f64, latency: self.latency * n as f64 }
    }
}

impl std::ops::Add for OpCost {
    type Output = OpCost;

    fn add(self, rhs: OpCost) -> OpCost {
        self.then(rhs)
    }
}

impl std::iter::Sum for OpCost {
    fn sum<I: Iterator<Item = OpCost>>(iter: I) -> OpCost {
        iter.fold(OpCost::ZERO, OpCost::then)
    }
}

/// Running totals of operations performed by an array.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Ledger {
    /// Number of operations recorded.
    pub ops: u64,
    /// Total dynamic energy spent.
    pub energy: Energy,
    /// Total busy time accumulated.
    pub busy: Latency,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Records one operation.
    pub fn record(&mut self, cost: OpCost) {
        self.ops += 1;
        self.energy += cost.energy;
        self.busy += cost.latency;
    }

    /// Resets all totals.
    pub fn reset(&mut self) {
        *self = Ledger::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_basics() {
        let g = Geometry::new(256, 18);
        assert_eq!(g.rows(), 256);
        assert_eq!(g.cols(), 18);
        assert_eq!(g.cells(), 4608);
        assert_eq!(g.to_string(), "256x18");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_dim() {
        let _ = Geometry::new(0, 8);
    }

    #[test]
    fn cell_array_area_scales() {
        let tech = TechnologyParams::cmos32();
        let small = Geometry::new(128, 128).cell_array_area(&tech);
        let big = Geometry::new(256, 128).cell_array_area(&tech);
        assert!((big.value() / small.value() - 2.0).abs() < 1e-12);
        // 128×128 at 4F², 32 nm: 16384 · 0.004096 µm² ≈ 67.1 µm².
        assert!((small.value() - 67.108864).abs() < 1e-6);
    }

    #[test]
    fn op_cost_composition() {
        let a = OpCost::new(Energy::new(1.0), Latency::new(2.0));
        let b = OpCost::new(Energy::new(3.0), Latency::new(1.0));
        let s = a.then(b);
        assert_eq!(s.energy.value(), 4.0);
        assert_eq!(s.latency.value(), 3.0);
        let p = a.alongside(b);
        assert_eq!(p.energy.value(), 4.0);
        assert_eq!(p.latency.value(), 2.0);
        let r = a.repeat(3);
        assert_eq!(r.energy.value(), 3.0);
        assert_eq!(r.latency.value(), 6.0);
    }

    #[test]
    fn op_cost_sum() {
        let total: OpCost = (0..4).map(|_| OpCost::new(Energy::new(0.5), Latency::new(1.0))).sum();
        assert_eq!(total.energy.value(), 2.0);
        assert_eq!(total.latency.value(), 4.0);
    }

    #[test]
    fn ledger_accumulates() {
        let mut l = Ledger::new();
        l.record(OpCost::new(Energy::new(1.0), Latency::new(2.0)));
        l.record(OpCost::new(Energy::new(0.5), Latency::new(0.5)));
        assert_eq!(l.ops, 2);
        assert_eq!(l.energy.value(), 1.5);
        assert_eq!(l.busy.value(), 2.5);
        l.reset();
        assert_eq!(l.ops, 0);
    }
}
