//! Lookup-table crossbar array.

use crate::geometry::{Geometry, Ledger, OpCost};
use rand::Rng;
use star_device::peripherals::PeripheralLibrary;
use star_device::{CostSheet, Energy, Latency, NoiseModel, RramCell, TechnologyParams};

/// An RRAM crossbar used as a read-only lookup table: each row stores one
/// output word; driving a single wordline (the one-hot match vector coming
/// from a CAM) reads that word out on the bitlines.
///
/// In the STAR exponential stage (Fig. 2), the LUT crossbar holds the
/// pre-computed `exp(x_i − x_max)` for every possible difference magnitude;
/// the CAM's match line for the input value directly drives the LUT row.
///
/// # Examples
///
/// ```
/// use star_crossbar::LutCrossbar;
/// use star_device::{NoiseModel, TechnologyParams};
/// use rand::SeedableRng;
///
/// let tech = TechnologyParams::cmos32();
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let mut lut = LutCrossbar::new(4, 8, &tech, NoiseModel::ideal(), &mut rng);
/// lut.store_word(2, 0b1010_0001);
/// assert_eq!(lut.read_row(2), 0b1010_0001);
/// ```
#[derive(Debug, Clone)]
pub struct LutCrossbar {
    geometry: Geometry,
    word_bits: usize,
    cells: Vec<Vec<RramCell>>,
    tech: TechnologyParams,
    ledger: Ledger,
}

impl LutCrossbar {
    /// Builds an erased LUT of `rows` words of `word_bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `word_bits` is zero or exceeds 64.
    pub fn new<R: Rng + ?Sized>(
        rows: usize,
        word_bits: usize,
        tech: &TechnologyParams,
        noise: NoiseModel,
        rng: &mut R,
    ) -> Self {
        assert!((1..=64).contains(&word_bits), "LUT word width must be in 1..=64");
        let geometry = Geometry::new(rows, word_bits);
        let cells = (0..rows)
            .map(|_| {
                (0..word_bits)
                    .map(|_| {
                        let mut c = RramCell::new(2, tech);
                        c.set_fault(noise.sample_fault(rng));
                        c
                    })
                    .collect()
            })
            .collect();
        LutCrossbar { geometry, word_bits, cells, tech: *tech, ledger: Ledger::new() }
    }

    /// Array shape.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Output word width in bits.
    pub fn word_bits(&self) -> usize {
        self.word_bits
    }

    /// Programs a row with a word (LSB = column 0... stored MSB-first in
    /// column 0 for readability: bit `word_bits-1-j` of `word` lands in
    /// column `j`).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `word` does not fit in
    /// `word_bits` bits.
    pub fn store_word(&mut self, row: usize, word: u64) {
        assert!(row < self.geometry.rows(), "row {row} out of range");
        assert!(
            self.word_bits == 64 || word < (1u64 << self.word_bits),
            "word {word:#x} wider than {} bits",
            self.word_bits
        );
        for j in 0..self.word_bits {
            let bit = (word >> (self.word_bits - 1 - j)) & 1 == 1;
            self.cells[row][j].program_ideal(u16::from(bit));
        }
    }

    /// Reads one row (the one-hot driven lookup), recording its cost.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn read_row(&mut self, row: usize) -> u64 {
        assert!(row < self.geometry.rows(), "row {row} out of range");
        let cost = self.read_cost();
        self.ledger.record(cost);
        star_telemetry::count("crossbar.lut.reads", 1);
        star_telemetry::add("crossbar.lut.energy_pj", cost.energy.value());
        self.peek_row(row)
    }

    /// Reads a row without recording cost (for assertions).
    pub fn peek_row(&self, row: usize) -> u64 {
        let mut word = 0u64;
        for j in 0..self.word_bits {
            word = (word << 1) | u64::from(self.cells[row][j].stores_one());
        }
        word
    }

    /// Reads the row selected by a one-hot drive vector.
    ///
    /// # Panics
    ///
    /// Panics if the vector length mismatches or is not exactly one-hot
    /// (a multi-hot drive would superimpose currents — the engine
    /// guarantees one-hot via the CAM).
    pub fn read_one_hot(&mut self, one_hot: &[bool]) -> u64 {
        assert_eq!(one_hot.len(), self.geometry.rows(), "drive vector length mismatch");
        let hot: Vec<usize> =
            one_hot.iter().enumerate().filter(|(_, &h)| h).map(|(i, _)| i).collect();
        assert_eq!(hot.len(), 1, "LUT drive must be exactly one-hot, got {} hot lines", hot.len());
        self.read_row(hot[0])
    }

    /// Energy/latency of one row read.
    pub fn read_cost(&self) -> OpCost {
        let cols = self.geometry.cols();
        let sa = PeripheralLibrary::sense_amp();
        let drv = star_device::DriverSpec::wordline32();
        // One driven row: up to `cols` conducting cells + column sense amps.
        let cell = self.tech.cell_search_energy(self.tech.g_lrs()) * cols as f64;
        let energy: Energy = cell + sa.energy_per_op() * cols as f64 + drv.energy_per_toggle();
        OpCost::new(energy, Latency::new(self.tech.cam_search_ns))
    }

    /// Itemized area/power budget (cells + column sense amps + row driver).
    pub fn cost_sheet(&self, name: &str, activity: f64) -> CostSheet {
        let cols = self.geometry.cols();
        let rows = self.geometry.rows();
        let mut sheet = CostSheet::new(name);
        let read_power =
            (self.read_cost().energy / Latency::new(self.tech.cam_search_ns)) * activity;
        sheet.add("cell array", self.geometry.cell_array_area(&self.tech), read_power);
        let sa = PeripheralLibrary::sense_amp();
        sheet.add("column sense amps", sa.area() * cols as f64, sa.static_power() * cols as f64);
        let drv = star_device::DriverSpec::wordline32();
        sheet.add("row drivers", drv.area() * rows as f64, star_device::Power::ZERO);
        sheet
    }

    /// Running operation totals.
    pub fn ledger(&self) -> Ledger {
        self.ledger
    }

    /// Resets the operation totals.
    pub fn reset_ledger(&mut self) {
        self.ledger.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn lut(rows: usize, bits: usize) -> LutCrossbar {
        let tech = TechnologyParams::cmos32();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        LutCrossbar::new(rows, bits, &tech, NoiseModel::ideal(), &mut rng)
    }

    #[test]
    fn store_and_read_round_trip() {
        let mut l = lut(16, 12);
        for r in 0..16 {
            l.store_word(r, (r as u64 * 273) & 0xFFF);
        }
        for r in 0..16 {
            assert_eq!(l.read_row(r), (r as u64 * 273) & 0xFFF, "row {r}");
        }
    }

    #[test]
    fn one_hot_read() {
        let mut l = lut(8, 4);
        l.store_word(5, 0b1001);
        let mut drive = vec![false; 8];
        drive[5] = true;
        assert_eq!(l.read_one_hot(&drive), 0b1001);
    }

    #[test]
    #[should_panic(expected = "exactly one-hot")]
    fn multi_hot_rejected() {
        let mut l = lut(4, 4);
        l.read_one_hot(&[true, false, true, false]);
    }

    #[test]
    #[should_panic(expected = "wider than")]
    fn word_too_wide_rejected() {
        let mut l = lut(4, 4);
        l.store_word(0, 0x10);
    }

    #[test]
    fn max_width_word() {
        let mut l = lut(2, 64);
        l.store_word(1, u64::MAX);
        assert_eq!(l.read_row(1), u64::MAX);
    }

    #[test]
    fn read_cost_scales_with_width() {
        let narrow = lut(256, 9).read_cost();
        let wide = lut(256, 18).read_cost();
        assert!(wide.energy.value() > narrow.energy.value());
    }

    #[test]
    fn ledger_and_sheet() {
        let mut l = lut(256, 18);
        l.store_word(0, 1);
        l.read_row(0);
        assert_eq!(l.ledger().ops, 1);
        let sheet = l.cost_sheet("lut", 1.0);
        assert_eq!(sheet.items().len(), 3);
        assert!(sheet.total_area().value() > 0.0);
    }
}
