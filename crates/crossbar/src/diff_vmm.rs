//! Differential (signed-weight) VMM built from a positive/negative array
//! pair — how RRAM accelerators map signed matrices (attention projections,
//! K/V tiles) onto unsigned conductances.

use crate::geometry::OpCost;
use crate::vmm::{Readout, VmmCrossbar};
use rand::Rng;
use star_device::{CostSheet, NoiseModel, TechnologyParams};

/// A signed-weight VMM: weight `w` is split as `w = w⁺ − w⁻` with each half
/// stored in its own unsigned array; bitline currents subtract at the sense
/// stage.
///
/// # Examples
///
/// ```
/// use star_crossbar::{DifferentialVmm, Readout};
/// use star_device::{NoiseModel, TechnologyParams};
/// use rand::SeedableRng;
///
/// let tech = TechnologyParams::cmos32();
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let mut xbar =
///     DifferentialVmm::new(3, 2, 4, Readout::Ideal, &tech, NoiseModel::ideal(), &mut rng);
/// xbar.store_signed_weights(&[vec![3, -2], vec![-1, 4], vec![0, -5]]);
/// let y = xbar.multiply(&[1, 2, 3], 2);
/// assert_eq!(y, vec![1.0, -9.0]); // 3−2, −2+8−15
/// ```
#[derive(Debug, Clone)]
pub struct DifferentialVmm {
    positive: VmmCrossbar,
    negative: VmmCrossbar,
    weight_bits: u8,
}

impl DifferentialVmm {
    /// Builds the array pair. `weight_bits` is the magnitude precision of
    /// each half.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`VmmCrossbar::new`].
    pub fn new<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        weight_bits: u8,
        readout: Readout,
        tech: &TechnologyParams,
        noise: NoiseModel,
        rng: &mut R,
    ) -> Self {
        DifferentialVmm {
            positive: VmmCrossbar::new(rows, cols, weight_bits, readout, tech, noise, rng),
            negative: VmmCrossbar::new(rows, cols, weight_bits, readout, tech, noise, rng),
            weight_bits,
        }
    }

    /// Logical matrix shape (inputs × outputs).
    pub fn logical_shape(&self) -> (usize, usize) {
        self.positive.logical_shape()
    }

    /// Programs a signed weight matrix: positive values go to the positive
    /// array, negative magnitudes to the negative array.
    ///
    /// # Panics
    ///
    /// Panics if the shape mismatches or any |weight| overflows
    /// `weight_bits`.
    pub fn store_signed_weights(&mut self, weights: &[Vec<i32>]) {
        let (rows, cols) = self.logical_shape();
        assert_eq!(weights.len(), rows, "weight row count mismatch");
        let mut pos = vec![vec![0u32; cols]; rows];
        let mut neg = vec![vec![0u32; cols]; rows];
        for (r, row) in weights.iter().enumerate() {
            assert_eq!(row.len(), cols, "weight column count mismatch at row {r}");
            for (c, &w) in row.iter().enumerate() {
                if w >= 0 {
                    pos[r][c] = w as u32;
                } else {
                    neg[r][c] = w.unsigned_abs();
                }
            }
        }
        self.positive.store_weights(&pos);
        self.negative.store_weights(&neg);
    }

    /// The signed weight a logical cell pair effectively stores.
    pub fn effective_weight(&self, row: usize, col: usize) -> i64 {
        self.positive.effective_weight(row, col) as i64
            - self.negative.effective_weight(row, col) as i64
    }

    /// Exact digital reference of the signed VMM.
    pub fn multiply_exact(&self, inputs: &[u64]) -> Vec<i128> {
        let p = self.positive.multiply_exact(inputs);
        let n = self.negative.multiply_exact(inputs);
        p.iter().zip(&n).map(|(&a, &b)| a as i128 - b as i128).collect()
    }

    /// Analog signed VMM (both halves fire in parallel, currents subtract).
    ///
    /// # Panics
    ///
    /// Same conditions as [`VmmCrossbar::multiply`].
    pub fn multiply(&mut self, inputs: &[u64], input_bits: u8) -> Vec<f64> {
        let p = self.positive.multiply(inputs, input_bits);
        let n = self.negative.multiply(inputs, input_bits);
        p.iter().zip(&n).map(|(a, b)| a - b).collect()
    }

    /// Cost of one signed VMM: both arrays fire in parallel.
    pub fn vmm_cost(&self, input_bits: u8) -> OpCost {
        self.positive.vmm_cost(input_bits).alongside(self.negative.vmm_cost(input_bits))
    }

    /// Itemized area/power of the pair.
    pub fn cost_sheet(&self, name: &str, activity: f64) -> CostSheet {
        let mut sheet = CostSheet::new(name.to_owned());
        sheet.absorb(&self.positive.cost_sheet("positive", activity));
        sheet.absorb(&self.negative.cost_sheet("negative", activity));
        sheet
    }

    /// Magnitude precision of each half.
    pub fn weight_bits(&self) -> u8 {
        self.weight_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn diff(rows: usize, cols: usize, bits: u8) -> DifferentialVmm {
        let tech = TechnologyParams::cmos32();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        DifferentialVmm::new(rows, cols, bits, Readout::Ideal, &tech, NoiseModel::ideal(), &mut rng)
    }

    #[test]
    fn signed_multiply_matches_reference() {
        let mut x = diff(6, 3, 5);
        let w: Vec<Vec<i32>> =
            (0..6).map(|r| (0..3).map(|c| ((r * 7 + c * 11) % 31) - 15).collect()).collect();
        x.store_signed_weights(&w);
        let inputs: Vec<u64> = (0..6).map(|i| (i % 4) as u64).collect();
        let exact = x.multiply_exact(&inputs);
        let analog = x.multiply(&inputs, 2);
        let mut reference = [0i64; 3];
        for (r, row) in w.iter().enumerate() {
            for (c, &wv) in row.iter().enumerate() {
                reference[c] += inputs[r] as i64 * wv as i64;
            }
        }
        for c in 0..3 {
            assert_eq!(exact[c] as i64, reference[c]);
            assert!((analog[c] - reference[c] as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn effective_weight_signed() {
        let mut x = diff(2, 2, 4);
        x.store_signed_weights(&[vec![7, -3], vec![0, 15]]);
        assert_eq!(x.effective_weight(0, 0), 7);
        assert_eq!(x.effective_weight(0, 1), -3);
        assert_eq!(x.effective_weight(1, 0), 0);
        assert_eq!(x.effective_weight(1, 1), 15);
    }

    #[test]
    fn cost_doubles_energy_not_latency() {
        let x = diff(64, 8, 6);
        let single = x.positive.vmm_cost(4);
        let pair = x.vmm_cost(4);
        assert!((pair.energy.value() - 2.0 * single.energy.value()).abs() < 1e-9);
        assert_eq!(pair.latency.value(), single.latency.value());
    }

    #[test]
    fn cost_sheet_has_both_halves() {
        let x = diff(16, 4, 4);
        let sheet = x.cost_sheet("proj", 0.5);
        assert!(sheet.items().iter().any(|i| i.name.starts_with("positive/")));
        assert!(sheet.items().iter().any(|i| i.name.starts_with("negative/")));
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn bad_shape_rejected() {
        let mut x = diff(2, 2, 4);
        x.store_signed_weights(&[vec![1, 2]]);
    }
}
