//! RRAM crossbar array simulators for the STAR reproduction.
//!
//! Four array types cover everything the paper's engines need:
//!
//! - [`VmmCrossbar`] — analog vector–matrix multiply with bit-serial
//!   inputs, bit-sliced weights and per-column ADC readout (the MatMul
//!   engine substrate and the softmax summation array),
//! - [`CamCrossbar`] — TCAM search with complementary cell pairs and a
//!   matchline discharge model,
//! - [`LutCrossbar`] — one-hot-driven row lookup (the exponential table),
//! - [`CamSubCrossbar`] — the paper's time-multiplexed CAM/SUB array
//!   (Fig. 1): descending-order max find plus analog subtraction.
//!
//! Every array accounts its own energy/latency per operation ([`OpCost`],
//! [`Ledger`]) and produces an itemized area/power budget
//! ([`star_device::CostSheet`]) so the experiment harnesses can assemble
//! Table I and Fig. 3 from first principles.
//!
//! # Examples
//!
//! ```
//! use star_crossbar::CamSubCrossbar;
//! use star_device::{NoiseModel, TechnologyParams};
//! use star_fixed::{Fixed, QFormat, Rounding};
//! use rand::SeedableRng;
//!
//! let fmt = QFormat::new(6, 3)?;
//! let tech = TechnologyParams::cmos32();
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let mut xbar = CamSubCrossbar::new(fmt, &tech, NoiseModel::ideal(), &mut rng);
//! let xs: Vec<Fixed> =
//!     [0.5, -2.0, 3.125].iter().map(|&v| Fixed::from_f64(v, fmt, Rounding::Nearest)).collect();
//! let (max, diffs) = xbar.stage1(&xs)?;
//! assert_eq!(max.to_f64(), 3.125);
//! assert!(diffs.iter().all(|d| d.to_f64() <= 0.0));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cam;
mod cam_sub;
mod diff_vmm;
mod geometry;
mod lut;
mod vmm;

pub use cam::CamCrossbar;
pub use cam_sub::{CamSubCrossbar, MaxSearchResult, SearchError};
pub use diff_vmm::DifferentialVmm;
pub use geometry::{Geometry, Ledger, OpCost};
pub use lut::LutCrossbar;
pub use vmm::{IrDropModel, Readout, VmmCrossbar};
