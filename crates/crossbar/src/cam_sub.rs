//! The time-multiplexed CAM/SUB crossbar of Fig. 1.
//!
//! One array, two roles:
//!
//! 1. **CAM (max find):** every representable value is stored in
//!    **descending order** (row 0 holds the largest code). Each input `x_i`
//!    is searched; the per-input one-hot match vectors are OR-merged, and
//!    the *first* '1' in the merged vector — found by a priority encoder —
//!    is the row of `x_max`.
//! 2. **SUB (subtraction):** the match vector drives the wordlines with the
//!    `x_max` row driven negatively; each bitline then carries the current
//!    difference of the two stored bit patterns, and the weighted
//!    recombination of the bitline outputs is exactly `x_i − x_max`.

use crate::cam::CamCrossbar;
use crate::geometry::{Geometry, Ledger, OpCost};
use rand::Rng;
use serde::{Deserialize, Serialize};
use star_device::peripherals::PeripheralLibrary;
use star_device::{CostSheet, Latency, NoiseModel, TechnologyParams};
use star_fixed::{encoding, Fixed, QFormat};
use std::error::Error;
use std::fmt;

/// Error from a CAM max search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchError {
    /// The input vector was empty.
    EmptyInput,
    /// No stored row matched any input — only possible when stuck faults
    /// corrupt the array.
    NoMatch,
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::EmptyInput => write!(f, "cannot search an empty input vector"),
            SearchError::NoMatch => write!(f, "no CAM row matched any input (defective array)"),
        }
    }
}

impl Error for SearchError {}

/// Outcome of the max-find phase.
#[derive(Debug, Clone, PartialEq)]
pub struct MaxSearchResult {
    /// The maximum value found (read back from the winning row).
    pub max: Fixed,
    /// The winning row index.
    pub row: usize,
    /// The OR-merged match vector across all inputs.
    pub merged: Vec<bool>,
    /// Per-input matched row (None if a defect prevented the match).
    pub per_input_rows: Vec<Option<usize>>,
}

/// The CAM/SUB crossbar: `2^total_bits` rows (512 for the paper's 9-bit
/// configuration) by `2·total_bits` physical columns (18).
///
/// # Examples
///
/// ```
/// use star_crossbar::CamSubCrossbar;
/// use star_device::{NoiseModel, TechnologyParams};
/// use star_fixed::{Fixed, QFormat, Rounding};
/// use rand::SeedableRng;
///
/// let fmt = QFormat::new(5, 3)?; // 9-bit values (sign + 5 + 3)
/// let tech = TechnologyParams::cmos32();
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let mut xbar = CamSubCrossbar::new(fmt, &tech, NoiseModel::ideal(), &mut rng);
/// assert_eq!(xbar.geometry().rows(), 512);
/// assert_eq!(xbar.geometry().cols(), 18);
///
/// let xs: Vec<Fixed> = [1.5, -3.0, 4.25, 0.0]
///     .iter()
///     .map(|&v| Fixed::from_f64(v, fmt, Rounding::Nearest))
///     .collect();
/// let found = xbar.find_max(&xs).expect("ideal array always matches");
/// assert_eq!(found.max.to_f64(), 4.25);
/// let diff = xbar.subtract(xs[1], found.max);
/// assert_eq!(diff.to_f64(), -7.25);
/// # Ok::<(), star_fixed::FormatError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CamSubCrossbar {
    format: QFormat,
    cam: CamCrossbar,
    tech: TechnologyParams,
    ledger: Ledger,
}

impl CamSubCrossbar {
    /// Builds the array for a value format, programming every representable
    /// value in descending order.
    pub fn new<R: Rng + ?Sized>(
        format: QFormat,
        tech: &TechnologyParams,
        noise: NoiseModel,
        rng: &mut R,
    ) -> Self {
        let rows = format.num_codes() as usize;
        let word_bits = format.total_bits() as usize;
        let mut cam = CamCrossbar::new(rows, word_bits, tech, noise, rng);
        for row in 0..rows {
            let raw = format.max_raw() - row as i64;
            let bits = encoding::to_twos_complement(Fixed::from_raw(raw, format));
            cam.store_row(row, &bits);
        }
        CamSubCrossbar { format, cam, tech: *tech, ledger: Ledger::new() }
    }

    /// The value format the array is built for.
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// Array shape.
    pub fn geometry(&self) -> Geometry {
        self.cam.geometry()
    }

    /// Row index storing a value (descending order: row 0 = max code).
    pub fn row_of(&self, value: Fixed) -> usize {
        debug_assert_eq!(value.format(), self.format, "value format mismatch");
        (self.format.max_raw() - value.raw()) as usize
    }

    /// The nominal value stored at a row.
    pub fn value_of(&self, row: usize) -> Fixed {
        assert!(row < self.geometry().rows(), "row {row} out of range");
        Fixed::from_raw(self.format.max_raw() - row as i64, self.format)
    }

    /// CAM phase: finds the maximum of the inputs (Fig. 1 steps ①–③).
    ///
    /// Each input is searched (one cycle each), match vectors are OR-merged,
    /// and the first hot row wins. Inputs must already be quantized to the
    /// array's format.
    ///
    /// # Errors
    ///
    /// [`SearchError::EmptyInput`] for an empty slice;
    /// [`SearchError::NoMatch`] if stuck faults prevent every match.
    ///
    /// # Panics
    ///
    /// Panics (debug) if any input has a different format.
    pub fn find_max(&mut self, inputs: &[Fixed]) -> Result<MaxSearchResult, SearchError> {
        if inputs.is_empty() {
            return Err(SearchError::EmptyInput);
        }
        let rows = self.geometry().rows();
        let mut merged = vec![false; rows];
        let mut per_input_rows = Vec::with_capacity(inputs.len());
        for &x in inputs {
            debug_assert_eq!(x.format(), self.format, "input format mismatch");
            let key = encoding::to_twos_complement(x);
            let hits = self.cam.search(&key);
            let mut first = None;
            for (r, hit) in hits.iter().enumerate() {
                if *hit {
                    merged[r] = true;
                    if first.is_none() {
                        first = Some(r);
                    }
                }
            }
            per_input_rows.push(first);
        }
        let merge = self.merge_cost();
        self.ledger.record(merge);
        star_telemetry::count("crossbar.camsub.max_searches", 1);
        star_telemetry::add("crossbar.camsub.energy_pj", merge.energy.value());
        let row = merged.iter().position(|&h| h).ok_or(SearchError::NoMatch)?;
        Ok(MaxSearchResult { max: self.value_of(row), row, merged, per_input_rows })
    }

    /// SUB phase for one input (Fig. 1 steps ④–⑤): drives `x`'s row
    /// positively and `max`'s row negatively; the bitline difference
    /// currents recombine into `x − max`.
    ///
    /// The result saturates at the format's minimum (hardware clips — the
    /// downstream exponential of a fully saturated difference is ≈ 0
    /// anyway). Computed through the *effective* stored patterns, so stuck
    /// faults corrupt the result exactly as they would on silicon.
    pub fn subtract(&mut self, x: Fixed, max: Fixed) -> Fixed {
        debug_assert_eq!(x.format(), self.format);
        debug_assert_eq!(max.format(), self.format);
        let bits_x = self.cam.effective_row(self.row_of(x));
        let bits_m = self.cam.effective_row(self.row_of(max));
        let vx = encoding::from_twos_complement(&bits_x, self.format);
        let vm = encoding::from_twos_complement(&bits_m, self.format);
        let raw = (vx.raw() - vm.raw()).min(0); // differences are ≤ 0 by construction
        let sub = self.subtract_cost();
        self.ledger.record(sub);
        star_telemetry::count("crossbar.camsub.subtracts", 1);
        star_telemetry::add("crossbar.camsub.energy_pj", sub.energy.value());
        Fixed::from_raw(raw, self.format)
    }

    /// Like [`CamSubCrossbar::subtract`], additionally applying per-bitline
    /// read noise from `noise` before the sense threshold.
    pub fn subtract_noisy<R: Rng + ?Sized>(
        &mut self,
        x: Fixed,
        max: Fixed,
        noise: &NoiseModel,
        rng: &mut R,
    ) -> Fixed {
        // Per-column ternary sense: noise shifts the normalized differential
        // current; the ±0.5 thresholds absorb it unless it exceeds half a
        // unit current.
        let row_x = self.row_of(x);
        let row_m = self.row_of(max);
        let bits_x = self.cam.effective_row(row_x);
        let bits_m = self.cam.effective_row(row_m);
        let n = bits_x.len();
        let mut raw: i64 = 0;
        for j in 0..n {
            let ideal = i64::from(bits_x[j]) - i64::from(bits_m[j]);
            let sensed = noise.read(ideal as f64, rng);
            let digit = sensed.round().clamp(-1.0, 1.0) as i64;
            let weight = 1i64 << (n - 1 - j);
            raw += if j == 0 { -digit * weight } else { digit * weight };
        }
        let sub = self.subtract_cost();
        self.ledger.record(sub);
        star_telemetry::count("crossbar.camsub.subtracts", 1);
        star_telemetry::add("crossbar.camsub.energy_pj", sub.energy.value());
        Fixed::from_raw(raw.min(0), self.format)
    }

    /// Full stage 1 of the softmax: max-find followed by per-input
    /// subtraction.
    ///
    /// # Errors
    ///
    /// Propagates [`SearchError`] from the max search.
    pub fn stage1(&mut self, inputs: &[Fixed]) -> Result<(Fixed, Vec<Fixed>), SearchError> {
        let found = self.find_max(inputs)?;
        let diffs = inputs.iter().map(|&x| self.subtract(x, found.max)).collect();
        Ok((found.max, diffs))
    }

    /// Cost of one CAM search cycle (per input).
    pub fn search_cost(&self) -> OpCost {
        self.cam.search_cost()
    }

    /// Cost of the OR-merge + priority-encode step after all searches.
    pub fn merge_cost(&self) -> OpCost {
        let rows = self.geometry().rows();
        let or = PeripheralLibrary::or_tree(rows);
        let pe = PeripheralLibrary::priority_encoder(rows);
        OpCost::new(
            or.energy_per_op() + pe.energy_per_op(),
            Latency::new(or.latency_per_op().value() + pe.latency_per_op().value()),
        )
    }

    /// Cost of one subtraction cycle (one array read + recombination add).
    pub fn subtract_cost(&self) -> OpCost {
        let cols = self.geometry().cols();
        let sa = PeripheralLibrary::sense_amp();
        let add = PeripheralLibrary::int_adder(self.format.total_bits());
        let cell = self.tech.cell_search_energy(self.tech.g_lrs()) * cols as f64;
        OpCost::new(
            cell + sa.energy_per_op() * cols as f64 + add.energy_per_op(),
            Latency::new(self.tech.cam_search_ns),
        )
    }

    /// Total cost of stage 1 over `n` inputs: `n` searches, one merge,
    /// `n` subtractions.
    pub fn stage1_cost(&self, n: usize) -> OpCost {
        self.search_cost()
            .repeat(n as u64)
            .then(self.merge_cost())
            .then(self.subtract_cost().repeat(n as u64))
    }

    /// Itemized area/power budget (CAM array + merge/encode periphery +
    /// recombination adder).
    pub fn cost_sheet(&self, name: &str, activity: f64) -> CostSheet {
        let rows = self.geometry().rows();
        let mut sheet = CostSheet::new(name);
        sheet.absorb(&self.cam.cost_sheet("cam", activity));
        let or = PeripheralLibrary::or_tree(rows);
        sheet.add("or-merge tree", or.area(), or.average_power(activity));
        let pe = PeripheralLibrary::priority_encoder(rows);
        sheet.add("priority encoder", pe.area(), pe.average_power(activity));
        let add = PeripheralLibrary::int_adder(self.format.total_bits());
        sheet.add("recombination adder", add.area(), add.average_power(activity));
        sheet
    }

    /// Mutable access to the underlying CAM for fault injection in tests.
    pub fn cam_mut(&mut self) -> &mut CamCrossbar {
        &mut self.cam
    }

    /// Running operation totals (merges + subtractions; per-search totals
    /// live on the inner CAM's ledger).
    pub fn ledger(&self) -> Ledger {
        self.ledger
    }

    /// Total dynamic energy recorded across the array and its inner CAM
    /// since the last reset.
    pub fn measured_energy(&self) -> star_device::Energy {
        self.ledger.energy + self.cam.ledger().energy
    }

    /// Resets both ledgers.
    pub fn reset_ledgers(&mut self) {
        self.ledger.reset();
        self.cam.reset_ledger();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use star_fixed::Rounding;

    fn xbar(fmt: QFormat) -> CamSubCrossbar {
        let tech = TechnologyParams::cmos32();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        CamSubCrossbar::new(fmt, &tech, NoiseModel::ideal(), &mut rng)
    }

    fn fx(v: f64, fmt: QFormat) -> Fixed {
        Fixed::from_f64(v, fmt, Rounding::Nearest)
    }

    #[test]
    fn paper_geometry_9bit() {
        let fmt = QFormat::new(5, 3).unwrap();
        let x = xbar(fmt);
        assert_eq!(x.geometry().rows(), 512);
        assert_eq!(x.geometry().cols(), 18);
    }

    #[test]
    fn descending_order() {
        let fmt = QFormat::new(3, 1).unwrap();
        let x = xbar(fmt);
        assert_eq!(x.value_of(0), Fixed::max(fmt));
        assert_eq!(x.value_of(x.geometry().rows() - 1), Fixed::min(fmt));
        for r in 1..x.geometry().rows() {
            assert!(x.value_of(r) < x.value_of(r - 1));
        }
    }

    #[test]
    fn row_of_round_trips() {
        let fmt = QFormat::new(4, 2).unwrap();
        let x = xbar(fmt);
        for raw in fmt.min_raw()..=fmt.max_raw() {
            let v = Fixed::from_raw(raw, fmt);
            assert_eq!(x.value_of(x.row_of(v)), v);
        }
    }

    #[test]
    fn find_max_matches_reference() {
        let fmt = QFormat::new(5, 2).unwrap();
        let mut x = xbar(fmt);
        let vals: Vec<Fixed> =
            [-3.5, 12.25, 0.0, -17.0, 12.0, 5.75].iter().map(|&v| fx(v, fmt)).collect();
        let found = x.find_max(&vals).unwrap();
        assert_eq!(found.max.to_f64(), 12.25);
        assert_eq!(found.row, x.row_of(fx(12.25, fmt)));
        // Every input matched its own row.
        for (i, r) in found.per_input_rows.iter().enumerate() {
            assert_eq!(*r, Some(x.row_of(vals[i])), "input {i}");
        }
    }

    #[test]
    fn find_max_with_duplicates() {
        let fmt = QFormat::new(4, 1).unwrap();
        let mut x = xbar(fmt);
        let vals = vec![fx(2.0, fmt), fx(2.0, fmt), fx(-1.0, fmt)];
        let found = x.find_max(&vals).unwrap();
        assert_eq!(found.max.to_f64(), 2.0);
        assert_eq!(found.merged.iter().filter(|&&h| h).count(), 2); // two distinct values
    }

    #[test]
    fn empty_input_is_error() {
        let fmt = QFormat::new(3, 1).unwrap();
        let mut x = xbar(fmt);
        assert_eq!(x.find_max(&[]), Err(SearchError::EmptyInput));
    }

    #[test]
    fn subtract_exact_in_range() {
        let fmt = QFormat::new(5, 2).unwrap();
        let mut x = xbar(fmt);
        let a = fx(3.25, fmt);
        let m = fx(10.5, fmt);
        assert_eq!(x.subtract(a, m).to_f64(), -7.25);
        assert_eq!(x.subtract(m, m).to_f64(), 0.0);
    }

    #[test]
    fn subtract_saturates_at_min() {
        let fmt = QFormat::new(3, 0).unwrap(); // range [-8, 7]
        let mut x = xbar(fmt);
        let lo = fx(-8.0, fmt);
        let hi = fx(7.0, fmt);
        // True difference -15 clips at the format minimum -8.
        assert_eq!(x.subtract(lo, hi).to_f64(), -8.0);
    }

    #[test]
    fn stage1_differences_nonpositive() {
        let fmt = QFormat::new(6, 3).unwrap();
        let mut x = xbar(fmt);
        let vals: Vec<Fixed> =
            [-8.0, 3.125, 7.0, 0.25, -0.125].iter().map(|&v| fx(v, fmt)).collect();
        let (max, diffs) = x.stage1(&vals).unwrap();
        assert_eq!(max.to_f64(), 7.0);
        for (i, d) in diffs.iter().enumerate() {
            assert!(d.to_f64() <= 0.0);
            assert_eq!(d.to_f64(), vals[i].to_f64() - 7.0, "input {i}");
        }
    }

    #[test]
    fn stuck_fault_can_corrupt_max() {
        let fmt = QFormat::new(3, 0).unwrap();
        let mut x = xbar(fmt);
        let v = fx(5.0, fmt);
        let row = x.row_of(v);
        // Force a mismatch on that value's row: 5.0 has sign bit 0, so the
        // search path for the MSB goes through the *true* cell; stick it on
        // and the matchline always discharges.
        x.cam_mut().inject_fault(row, 0, 0, star_device::StuckFault::StuckOn);
        let found = x.find_max(&[v, fx(1.0, fmt)]).unwrap();
        // 5.0's row no longer matches, so the (wrong) max is 1.0.
        assert_eq!(found.max.to_f64(), 1.0);
    }

    #[test]
    fn all_faulty_is_no_match() {
        let fmt = QFormat::new(2, 0).unwrap();
        let mut x = xbar(fmt);
        let v = fx(1.0, fmt);
        let row = x.row_of(v);
        // Both halves of the MSB pair stuck on: every search discharges.
        x.cam_mut().inject_fault(row, 0, 1, star_device::StuckFault::StuckOn);
        x.cam_mut().inject_fault(row, 0, 0, star_device::StuckFault::StuckOn);
        // Search only the now-unmatchable value.
        assert_eq!(x.find_max(&[v]), Err(SearchError::NoMatch));
    }

    #[test]
    fn noisy_subtract_small_noise_is_exact() {
        let fmt = QFormat::new(5, 2).unwrap();
        let mut x = xbar(fmt);
        let noise = NoiseModel::new(0.0, 0.05, 0.0, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..50 {
            let d = x.subtract_noisy(fx(1.25, fmt), fx(9.0, fmt), &noise, &mut rng);
            assert_eq!(d.to_f64(), -7.75); // 5 % noise < half sense margin
        }
    }

    #[test]
    fn costs_are_positive_and_compose() {
        let fmt = QFormat::new(6, 3).unwrap();
        let x = xbar(fmt);
        let c = x.stage1_cost(128);
        assert!(c.energy.value() > 0.0);
        // 128 searches + merge + 128 subtractions at 1 ns each ≥ 256 ns.
        assert!(c.latency.value() >= 256.0);
        let sheet = x.cost_sheet("cam/sub", 0.5);
        assert!(sheet.total_area().value() > 0.0);
        assert!(sheet.items().len() >= 6);
    }

    #[test]
    fn search_error_display() {
        assert!(SearchError::NoMatch.to_string().contains("defective"));
        assert!(SearchError::EmptyInput.to_string().contains("empty"));
    }
}
