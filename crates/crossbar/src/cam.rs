//! Content-addressable (TCAM) crossbar array.

use crate::geometry::{Geometry, Ledger, OpCost};
use rand::Rng;
use star_device::peripherals::PeripheralLibrary;
use star_device::{
    Area, CostSheet, Energy, Latency, NoiseModel, RramCell, StuckFault, TechnologyParams,
};

/// An RRAM TCAM crossbar: each row stores a bit pattern as complementary
/// cell pairs; a search key drives all searchlines and every matchline
/// evaluates in parallel, producing a one-hot (or multi-hot) match vector.
///
/// This is the building block of both softmax stages: the CAM/SUB array of
/// Fig. 1 searches quantized scores against all representable values, and
/// the exponential stage CAM of Fig. 2 searches `|x_i − x_max|` magnitudes.
///
/// The electrical model is digital-with-defects: stuck cells (sampled from
/// the [`NoiseModel`] at build time) corrupt the stored pattern exactly the
/// way a real stuck device would (a stuck-on cell conducts on every search,
/// a stuck-off cell never discharges its line), while bounded read noise is
/// absorbed by the matchline sense margin and does not flip decisions.
///
/// # Examples
///
/// ```
/// use star_crossbar::CamCrossbar;
/// use star_device::{NoiseModel, TechnologyParams};
/// use rand::SeedableRng;
///
/// let tech = TechnologyParams::cmos32();
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let mut cam = CamCrossbar::new(4, 3, &tech, NoiseModel::ideal(), &mut rng);
/// // Program every row (an erased row never discharges its matchline and
/// // would spuriously "match"; the softmax engine always fills the array).
/// for (row, word) in [0b000, 0b011, 0b101, 0b110].iter().enumerate() {
///     let bits: Vec<bool> = (0..3).rev().map(|b| (word >> b) & 1 == 1).collect();
///     cam.store_row(row, &bits);
/// }
/// assert_eq!(cam.search(&[true, false, true]), vec![false, false, true, false]);
/// ```
#[derive(Debug, Clone)]
pub struct CamCrossbar {
    geometry: Geometry,
    word_bits: usize,
    /// Cell pairs: `cells[row][2*bit]` is the true cell, `[2*bit+1]` the
    /// complement cell.
    cells: Vec<Vec<RramCell>>,
    tech: TechnologyParams,
    ledger: Ledger,
}

impl CamCrossbar {
    /// Builds an erased CAM of `rows` entries of `word_bits` bits each
    /// (2·`word_bits` physical columns). Stuck faults are sampled from
    /// `noise` per cell.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `word_bits` is zero.
    pub fn new<R: Rng + ?Sized>(
        rows: usize,
        word_bits: usize,
        tech: &TechnologyParams,
        noise: NoiseModel,
        rng: &mut R,
    ) -> Self {
        assert!(word_bits > 0, "CAM word width must be positive");
        let geometry = Geometry::new(rows, word_bits * 2);
        let cells = (0..rows)
            .map(|_| {
                (0..word_bits * 2)
                    .map(|_| {
                        let mut c = RramCell::new(2, tech);
                        c.set_fault(noise.sample_fault(rng));
                        c
                    })
                    .collect()
            })
            .collect();
        CamCrossbar { geometry, word_bits, cells, tech: *tech, ledger: Ledger::new() }
    }

    /// Array shape (rows × physical columns).
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Stored word width in bits.
    pub fn word_bits(&self) -> usize {
        self.word_bits
    }

    /// Programs a row with a bit pattern (complementary pair per bit).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `bits.len() != word_bits`.
    pub fn store_row(&mut self, row: usize, bits: &[bool]) {
        assert!(row < self.geometry.rows(), "row {row} out of range");
        assert_eq!(bits.len(), self.word_bits, "pattern width mismatch");
        for (i, &b) in bits.iter().enumerate() {
            self.cells[row][2 * i].program_ideal(u16::from(b));
            self.cells[row][2 * i + 1].program_ideal(u16::from(!b));
        }
    }

    /// The pattern a row *effectively* stores, reading through any stuck
    /// faults on the true cells.
    pub fn effective_row(&self, row: usize) -> Vec<bool> {
        (0..self.word_bits).map(|i| self.cells[row][2 * i].stores_one()).collect()
    }

    /// Whether a row matches a key under the matchline discharge model:
    /// the line survives iff no cell on a discharge path conducts.
    ///
    /// Searching bit `1` places the complement cell on the discharge path;
    /// searching `0` places the true cell there. A stuck-on cell on the
    /// path forces a mismatch; a stuck-off cell can mask one.
    fn row_matches(&self, row: usize, key: &[bool]) -> bool {
        key.iter().enumerate().all(|(i, &k)| {
            let path_cell = if k { &self.cells[row][2 * i + 1] } else { &self.cells[row][2 * i] };
            !path_cell.stores_one()
        })
    }

    /// Searches the array: returns the per-row match vector.
    ///
    /// # Panics
    ///
    /// Panics if `key.len() != word_bits`.
    pub fn search(&mut self, key: &[bool]) -> Vec<bool> {
        assert_eq!(key.len(), self.word_bits, "search key width mismatch");
        let result = (0..self.geometry.rows()).map(|r| self.row_matches(r, key)).collect();
        let cost = self.search_cost();
        self.ledger.record(cost);
        star_telemetry::count("crossbar.cam.searches", 1);
        star_telemetry::add("crossbar.cam.energy_pj", cost.energy.value());
        result
    }

    /// Energy/latency of one parallel search cycle.
    pub fn search_cost(&self) -> OpCost {
        let rows = self.geometry.rows();
        let cols = self.geometry.cols();
        let ml = PeripheralLibrary::matchline(cols);
        let sa = PeripheralLibrary::sense_amp();
        // Search-line drive: one driver toggle per physical column.
        let drive = star_device::DriverSpec::wordline32().energy_per_toggle() * cols as f64;
        // Roughly half the cells conduct during evaluation for one read
        // voltage pulse.
        let cell = self.tech.cell_search_energy(self.tech.g_lrs()) * (rows * cols) as f64 * 0.5;
        let energy: Energy =
            ml.energy_per_op() * rows as f64 + sa.energy_per_op() * rows as f64 + drive + cell;
        let latency = Latency::new(self.tech.cam_search_ns);
        OpCost::new(energy, latency)
    }

    /// Itemized area/power budget of the array (cells + matchline periphery
    /// + row sense amps + searchline drivers).
    pub fn cost_sheet(&self, name: &str, activity: f64) -> CostSheet {
        let rows = self.geometry.rows();
        let cols = self.geometry.cols();
        let mut sheet = CostSheet::new(name);
        sheet.add(
            "cell array",
            self.geometry.cell_array_area(&self.tech),
            self.array_read_power(activity),
        );
        let ml = PeripheralLibrary::matchline(cols);
        sheet.add(
            "matchline periphery",
            ml.area() * rows as f64,
            ml.average_power(activity) * rows as f64,
        );
        let sa = PeripheralLibrary::sense_amp();
        sheet.add(
            "row sense amps",
            sa.area() * rows as f64,
            sa.average_power(activity) * rows as f64,
        );
        let drv = star_device::DriverSpec::wordline32();
        sheet.add(
            "searchline drivers",
            drv.area() * cols as f64,
            Energy::new(drv.energy_per_toggle().value() * cols as f64).scale(activity)
                / Latency::new(self.tech.cam_search_ns),
        );
        sheet
    }

    /// Average cell-array read power at an activity factor.
    fn array_read_power(&self, activity: f64) -> star_device::Power {
        let per_search = self
            .tech
            .cell_search_energy(self.tech.g_lrs())
            .scale(self.geometry.cells() as f64 * 0.5);
        (per_search / Latency::new(self.tech.cam_search_ns)) * activity
    }

    /// Running operation totals.
    pub fn ledger(&self) -> Ledger {
        self.ledger
    }

    /// Resets the operation totals.
    pub fn reset_ledger(&mut self) {
        self.ledger.reset();
    }

    /// Injects a stuck fault into a specific cell (for failure-injection
    /// tests). `pair_half` 0 = true cell, 1 = complement cell.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn inject_fault(&mut self, row: usize, bit: usize, pair_half: usize, fault: StuckFault) {
        assert!(pair_half < 2, "pair half must be 0 or 1");
        self.cells[row][2 * bit + pair_half].set_fault(fault);
    }

    /// Total cell-array area.
    pub fn cell_area(&self) -> Area {
        self.geometry.cell_array_area(&self.tech)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn cam(rows: usize, bits: usize) -> CamCrossbar {
        let tech = TechnologyParams::cmos32();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        CamCrossbar::new(rows, bits, &tech, NoiseModel::ideal(), &mut rng)
    }

    #[test]
    fn exact_match_is_one_hot() {
        let mut c = cam(8, 4);
        for r in 0..8 {
            let bits: Vec<bool> = (0..4).map(|b| (r >> b) & 1 == 1).collect();
            c.store_row(r, &bits);
        }
        for r in 0..8 {
            let key: Vec<bool> = (0..4).map(|b| (r >> b) & 1 == 1).collect();
            let m = c.search(&key);
            assert_eq!(m.iter().filter(|&&x| x).count(), 1, "row {r}");
            assert!(m[r]);
        }
    }

    #[test]
    fn duplicate_rows_multi_hot() {
        let mut c = cam(4, 3);
        let p = [true, true, false];
        let other = [false, false, true];
        c.store_row(0, &other);
        c.store_row(1, &p);
        c.store_row(2, &other);
        c.store_row(3, &p);
        let m = c.search(&p);
        assert_eq!(m, vec![false, true, false, true]);
    }

    #[test]
    fn no_match_when_absent() {
        let mut c = cam(4, 3);
        c.store_row(0, &[false, false, false]);
        c.store_row(1, &[true, true, true]);
        let m = c.search(&[true, false, true]);
        // Erased rows store all-zero true cells AND all-zero complement
        // cells, so they match nothing... except keys whose discharge paths
        // all land on erased cells. Rows 2,3 are fully erased (HRS both
        // halves) and therefore match any key under the discharge model —
        // real designs mask unused rows; we store explicit patterns in all
        // rows in the engine. Here only programmed rows matter.
        assert!(!m[0]);
        assert!(!m[1]);
    }

    #[test]
    fn erased_rows_match_everything() {
        // Documents the discharge-model behaviour tested above: an erased
        // row (all HRS) never discharges, so it "matches". The softmax
        // engine always programs every row.
        let mut c = cam(2, 2);
        let m = c.search(&[true, false]);
        assert_eq!(m, vec![true, true]);
    }

    #[test]
    fn stuck_on_forces_mismatch() {
        let mut c = cam(2, 2);
        c.store_row(0, &[true, false]);
        // Stuck-on complement cell of bit 0: searching 1 now discharges.
        c.inject_fault(0, 0, 1, StuckFault::StuckOn);
        let m = c.search(&[true, false]);
        assert!(!m[0]);
    }

    #[test]
    fn stuck_off_masks_mismatch() {
        let mut c = cam(2, 2);
        c.store_row(0, &[true, false]);
        // Search key [false, false] would normally discharge via the true
        // cell of bit 0; stick it off and the row falsely matches.
        c.inject_fault(0, 0, 0, StuckFault::StuckOff);
        let m = c.search(&[false, false]);
        assert!(m[0]);
    }

    #[test]
    fn search_cost_positive_and_scales() {
        let small = cam(16, 4).search_cost();
        let large = cam(512, 9).search_cost();
        assert!(large.energy.value() > small.energy.value());
        assert!(small.energy.value() > 0.0);
        assert_eq!(small.latency.value(), 1.0);
    }

    #[test]
    fn ledger_counts_searches() {
        let mut c = cam(4, 2);
        c.store_row(0, &[true, true]);
        c.search(&[true, true]);
        c.search(&[false, true]);
        assert_eq!(c.ledger().ops, 2);
        assert!(c.ledger().energy.value() > 0.0);
        c.reset_ledger();
        assert_eq!(c.ledger().ops, 0);
    }

    #[test]
    fn cost_sheet_has_all_components() {
        let c = cam(512, 9);
        let sheet = c.cost_sheet("cam", 0.5);
        assert_eq!(sheet.items().len(), 4);
        assert!(sheet.total_area().value() > 0.0);
        assert!(sheet.total_power().value() > 0.0);
        // The paper's headline: the cell array itself is tiny (tens of µm²).
        assert!(c.cell_area().value() < 100.0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn search_rejects_bad_width() {
        let mut c = cam(4, 3);
        c.search(&[true]);
    }
}
