//! Analog vector–matrix-multiply crossbar array.
//!
//! The workhorse of every RRAM accelerator: weights live as cell
//! conductances, an input vector drives the wordlines, and each bitline
//! sums currents — one full VMM per read cycle. The STAR softmax engine
//! uses a VMM array to compute `Σ_j exp(x_j − x_max)` in a single shot from
//! the match-counter histogram (Fig. 2); the MatMul engine uses banks of
//! 128×128 VMM arrays for `QK^T` and `·V`.
//!
//! Dataflow follows ISAAC/ReTransformer: **bit-serial inputs** (one input
//! bit per cycle through binary wordline drivers), **bit-sliced weights**
//! (one bit per cell column slice), per-column ADC conversion each cycle,
//! and digital shift-add recombination.

use crate::geometry::{Geometry, Ledger, OpCost};
use rand::Rng;
use serde::{Deserialize, Serialize};
use star_device::peripherals::PeripheralLibrary;
use star_device::{
    AdcSpec, CostSheet, DriverSpec, Latency, NoiseModel, RramCell, TechnologyParams,
};

/// How bitline currents are converted back to digits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Readout {
    /// Ideal digital readout (no conversion error) — the reference path.
    Ideal,
    /// Per-column ADC of the given spec; column sums are quantized to the
    /// ADC's code grid every cycle, exactly like the real periphery.
    Adc(AdcSpec),
}

/// First-order IR-drop model: current contributed by a cell is attenuated
/// by the wire resistance it traverses along its wordline and bitline.
///
/// The attenuation for the cell at `(row, col)` is
/// `1 / (1 + g_lrs · r_wire · (row_distance + col_distance))`, the standard
/// first-order approximation used by NeuroSim's fast mode: distant corners
/// of large arrays lose signal, which bounds practical array sizes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IrDropModel {
    /// Wire resistance between adjacent cells, in Ω (≈2.5 Ω per cell at
    /// 32 nm copper).
    pub wire_resistance_ohm: f64,
}

impl IrDropModel {
    /// The 32 nm default (2.5 Ω/cell).
    pub fn typical() -> Self {
        IrDropModel { wire_resistance_ohm: 2.5 }
    }

    /// Attenuation factor for a cell position inside an array.
    pub fn attenuation(&self, row: usize, col: usize, rows: usize, cols: usize, g_lrs: f64) -> f64 {
        // Current enters at the driver (row side 0) and exits at the sense
        // amp (col side `cols`): the path length is the distance along the
        // wordline plus the remaining distance down the bitline.
        let path = (col + (rows - row)) as f64;
        let _ = cols;
        1.0 / (1.0 + g_lrs * self.wire_resistance_ohm * path)
    }
}

/// An RRAM VMM crossbar storing an `rows × cols` matrix of unsigned weight
/// codes of `weight_bits` bits each (one bit per cell slice).
///
/// Signed operands are handled one level up (the MatMul engine maps signed
/// matrices onto differential array pairs; the softmax-sum VMM is natively
/// unsigned because exponentials and counts are non-negative).
///
/// # Examples
///
/// ```
/// use star_crossbar::{Readout, VmmCrossbar};
/// use star_device::{NoiseModel, TechnologyParams};
/// use rand::SeedableRng;
///
/// let tech = TechnologyParams::cmos32();
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
/// let mut xbar = VmmCrossbar::new(4, 2, 4, Readout::Ideal, &tech, NoiseModel::ideal(), &mut rng);
/// // weights[row][col]
/// xbar.store_weights(&[vec![1, 2], vec![3, 4], vec![5, 6], vec![7, 8]]);
/// let y = xbar.multiply(&[1, 0, 2, 1], 2);
/// assert_eq!(y, vec![18.0, 22.0]); // 1·1+2·5+1·7, 1·2+2·6+1·8
/// ```
#[derive(Debug, Clone)]
pub struct VmmCrossbar {
    rows: usize,
    cols: usize,
    weight_bits: u8,
    bits_per_cell: u8,
    slices: usize,
    readout: Readout,
    /// Physical cells: `cells[row][col * slices + slice]`, slice 0 = most
    /// significant digit.
    cells: Vec<Vec<RramCell>>,
    noise: NoiseModel,
    tech: TechnologyParams,
    ir_drop: Option<IrDropModel>,
    ledger: Ledger,
}

impl VmmCrossbar {
    /// Builds an erased array of `rows` inputs × `cols` outputs with
    /// `weight_bits`-bit weights (so `cols · weight_bits` physical
    /// bitlines). Cell faults are sampled from `noise`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `weight_bits > 32`.
    pub fn new<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        weight_bits: u8,
        readout: Readout,
        tech: &TechnologyParams,
        noise: NoiseModel,
        rng: &mut R,
    ) -> Self {
        Self::with_mlc(rows, cols, weight_bits, 1, readout, tech, noise, rng)
    }

    /// Builds an array with **multi-level cells**: each cell stores
    /// `bits_per_cell` bits (2^bits_per_cell conductance levels), so a
    /// `weight_bits`-bit weight needs `ceil(weight_bits / bits_per_cell)`
    /// column slices — ISAAC's 2-bit-cell configuration halves the
    /// physical columns at the cost of tighter conductance margins.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, `weight_bits` is outside `1..=32`,
    /// or `bits_per_cell` is outside `1..=4`.
    #[allow(clippy::too_many_arguments)]
    pub fn with_mlc<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        weight_bits: u8,
        bits_per_cell: u8,
        readout: Readout,
        tech: &TechnologyParams,
        noise: NoiseModel,
        rng: &mut R,
    ) -> Self {
        assert!(rows > 0 && cols > 0, "VMM dimensions must be positive");
        assert!((1..=32).contains(&weight_bits), "weight bits must be in 1..=32");
        assert!((1..=4).contains(&bits_per_cell), "bits per cell must be in 1..=4");
        let slices = (weight_bits as usize).div_ceil(bits_per_cell as usize);
        let levels = 1u16 << bits_per_cell;
        let physical_cols = cols * slices;
        let cells = (0..rows)
            .map(|_| {
                (0..physical_cols)
                    .map(|_| {
                        let mut c = RramCell::new(levels, tech);
                        c.set_fault(noise.sample_fault(rng));
                        c
                    })
                    .collect()
            })
            .collect();
        VmmCrossbar {
            rows,
            cols,
            weight_bits,
            bits_per_cell,
            slices,
            readout,
            cells,
            noise,
            tech: *tech,
            ir_drop: None,
            ledger: Ledger::new(),
        }
    }

    /// Bits stored per cell.
    pub fn bits_per_cell(&self) -> u8 {
        self.bits_per_cell
    }

    /// Column slices per logical output.
    pub fn slices(&self) -> usize {
        self.slices
    }

    /// Enables the first-order IR-drop model for subsequent multiplies.
    pub fn set_ir_drop(&mut self, model: Option<IrDropModel>) {
        self.ir_drop = model;
    }

    /// The active IR-drop model, if any.
    pub fn ir_drop(&self) -> Option<IrDropModel> {
        self.ir_drop
    }

    /// Physical array shape (rows × physical bitlines).
    pub fn geometry(&self) -> Geometry {
        Geometry::new(self.rows, self.cols * self.slices)
    }

    /// Logical matrix shape (inputs × outputs).
    pub fn logical_shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Weight resolution in bits.
    pub fn weight_bits(&self) -> u8 {
        self.weight_bits
    }

    /// Programs the full weight matrix (`weights[row][col]`, unsigned
    /// codes).
    ///
    /// # Panics
    ///
    /// Panics if the shape mismatches or any code overflows `weight_bits`.
    pub fn store_weights(&mut self, weights: &[Vec<u32>]) {
        assert_eq!(weights.len(), self.rows, "weight row count mismatch");
        let max_code =
            if self.weight_bits == 32 { u32::MAX } else { (1u32 << self.weight_bits) - 1 };
        for (r, row) in weights.iter().enumerate() {
            assert_eq!(row.len(), self.cols, "weight column count mismatch at row {r}");
            for (c, &w) in row.iter().enumerate() {
                assert!(w <= max_code, "weight {w} overflows {} bits", self.weight_bits);
                let digit_mask = (1u32 << self.bits_per_cell) - 1;
                for s in 0..self.slices {
                    let shift = self.bits_per_cell as usize * (self.slices - 1 - s);
                    let digit = (w >> shift) & digit_mask;
                    self.cells[r][c * self.slices + s].program_ideal(digit as u16);
                }
            }
        }
    }

    /// The weight code a logical cell *effectively* stores (through
    /// faults).
    pub fn effective_weight(&self, row: usize, col: usize) -> u32 {
        let mut w = 0u32;
        for s in 0..self.slices {
            let digit = self.effective_level(&self.cells[row][col * self.slices + s]);
            w = (w << self.bits_per_cell) | u32::from(digit);
        }
        w
    }

    /// The digit a cell effectively stores: its (possibly faulted)
    /// conductance mapped back onto the level grid.
    fn effective_level(&self, cell: &RramCell) -> u16 {
        let levels = (1u16 << self.bits_per_cell) as f64;
        let norm =
            (cell.conductance() - self.tech.g_hrs()) / (self.tech.g_lrs() - self.tech.g_hrs());
        (norm * (levels - 1.0)).round().clamp(0.0, levels - 1.0) as u16
    }

    /// Exact digital reference: `y_j = Σ_i x_i · w_ij` over the effective
    /// weights.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != rows`.
    pub fn multiply_exact(&self, inputs: &[u64]) -> Vec<u128> {
        assert_eq!(inputs.len(), self.rows, "input length mismatch");
        (0..self.cols)
            .map(|c| {
                inputs
                    .iter()
                    .enumerate()
                    .map(|(r, &x)| x as u128 * self.effective_weight(r, c) as u128)
                    .sum()
            })
            .collect()
    }

    /// Analog VMM: bit-serial inputs of `input_bits` bits, per-cycle
    /// per-slice column conversion via the configured [`Readout`],
    /// shift-add recombination. Records cost in the ledger.
    ///
    /// # Panics
    ///
    /// Panics if the input length mismatches, any input overflows
    /// `input_bits`, or the array was built with a nonzero read-noise model
    /// (use [`VmmCrossbar::multiply_with`] and supply an RNG instead).
    pub fn multiply(&mut self, inputs: &[u64], input_bits: u8) -> Vec<f64> {
        assert!(
            self.noise.read_sigma == 0.0,
            "array has read noise; call multiply_with and provide an RNG"
        );
        let mut rng = NoRng;
        self.multiply_with(inputs, input_bits, &mut rng)
    }

    /// Like [`VmmCrossbar::multiply`] but applying the array's read-noise
    /// model using the provided RNG.
    pub fn multiply_with<R: Rng + ?Sized>(
        &mut self,
        inputs: &[u64],
        input_bits: u8,
        rng: &mut R,
    ) -> Vec<f64> {
        assert_eq!(inputs.len(), self.rows, "input length mismatch");
        assert!((1..=32).contains(&input_bits), "input bits must be in 1..=32");
        let limit = if input_bits == 64 { u64::MAX } else { 1u64 << input_bits };
        for &x in inputs {
            assert!(x < limit, "input {x} overflows {input_bits} bits");
        }
        let mut outputs = vec![0.0f64; self.cols];
        let unit = self.tech.g_lrs() - self.tech.g_hrs();
        let level_span = ((1u16 << self.bits_per_cell) - 1) as f64;
        // One cycle per input bit, MSB first.
        #[allow(clippy::needless_range_loop)] // c indexes both cells and outputs
        for b in (0..input_bits as usize).rev() {
            for c in 0..self.cols {
                for s in 0..self.slices {
                    // Normalized bitline current: each active cell adds its
                    // level fraction level/(levels−1) ∈ [0, 1].
                    let mut current = 0.0f64;
                    let physical_col = c * self.slices + s;
                    for (r, &x) in inputs.iter().enumerate() {
                        if (x >> b) & 1 == 1 {
                            let g = self.cells[r][physical_col].conductance();
                            let atten = match self.ir_drop {
                                Some(m) => m.attenuation(
                                    r,
                                    physical_col,
                                    self.rows,
                                    self.cols * self.slices,
                                    self.tech.g_lrs(),
                                ),
                                None => 1.0,
                            };
                            current += atten * (g - self.tech.g_hrs()) / unit;
                        }
                    }
                    let current = if self.noise.read_sigma > 0.0 {
                        self.noise.read(current, rng).max(0.0)
                    } else {
                        current
                    };
                    // Convert normalized current to a digit sum: the digit
                    // grid has `levels−1` steps per row.
                    let digit_sum = match self.readout {
                        Readout::Ideal => (current * level_span).round(),
                        Readout::Adc(adc) => {
                            if current <= 0.0 {
                                0.0
                            } else {
                                let fs = self.rows as f64;
                                (adc.dequantize(adc.quantize(current, fs), fs) * level_span).round()
                            }
                        }
                    };
                    let digit_shift = self.bits_per_cell as usize * (self.slices - 1 - s);
                    outputs[c] += digit_sum * 2f64.powi(b as i32) * 2f64.powi(digit_shift as i32);
                }
            }
        }
        let cost = self.vmm_cost(input_bits);
        self.ledger.record(cost);
        star_telemetry::count("crossbar.vmm.activations", 1);
        star_telemetry::count("crossbar.vmm.bit_cycles", input_bits as u64);
        star_telemetry::add("crossbar.vmm.energy_pj", cost.energy.value());
        outputs
    }

    /// Cost of one full VMM (all input bits): per cycle, wordline drives +
    /// cell reads + one conversion per physical column, then shift-add.
    pub fn vmm_cost(&self, input_bits: u8) -> OpCost {
        let cycles = input_bits as u64;
        let physical_cols = self.cols * self.slices;
        let drv = DriverSpec::wordline32();
        let cell = self.tech.cell_read_energy(self.tech.g_lrs())
            * (self.rows * physical_cols) as f64
            * 0.5;
        let convert = match self.readout {
            Readout::Ideal => star_device::Energy::ZERO,
            Readout::Adc(adc) => adc.conversion_energy() * physical_cols as f64,
        };
        let sa = PeripheralLibrary::shift_add(32);
        let per_cycle_energy = drv.energy_per_toggle() * self.rows as f64
            + cell
            + convert
            + sa.energy_per_op() * physical_cols as f64;
        let convert_latency = match self.readout {
            Readout::Adc(adc) => adc.conversion_latency().value(),
            Readout::Ideal => 0.0,
        };
        let per_cycle_latency = Latency::new(self.tech.crossbar_read_ns + convert_latency);
        OpCost::new(per_cycle_energy, per_cycle_latency).repeat(cycles)
    }

    /// Itemized area/power budget (cells + drivers + ADCs + shift-add).
    pub fn cost_sheet(&self, name: &str, activity: f64) -> CostSheet {
        let physical_cols = self.cols * self.slices;
        let mut sheet = CostSheet::new(name);
        let read_power = (self
            .tech
            .cell_read_energy(self.tech.g_lrs())
            .scale(self.geometry().cells() as f64 * 0.5)
            / Latency::new(self.tech.crossbar_read_ns))
            * activity;
        sheet.add("cell array", self.geometry().cell_array_area(&self.tech), read_power);
        let drv = DriverSpec::wordline32();
        sheet.add("wordline drivers", drv.area() * self.rows as f64, star_device::Power::ZERO);
        if let Readout::Adc(adc) = self.readout {
            // ADCs are shared across column slices in real designs; one ADC
            // per 8 physical columns time-multiplexed, as in ISAAC.
            let shared = (physical_cols as f64 / 8.0).ceil();
            sheet.add(
                "column adcs",
                adc.area() * shared,
                (adc.conversion_energy() / adc.conversion_latency()) * activity * shared,
            );
        }
        let sa = PeripheralLibrary::shift_add(32);
        sheet.add(
            "shift-add units",
            sa.area() * self.cols as f64,
            sa.average_power(activity) * self.cols as f64,
        );
        sheet
    }

    /// Reprograms the full weight matrix *with cost accounting* — what
    /// PipeLayer does to dynamic K/V/score matrices every inference.
    /// Functionally identical to [`VmmCrossbar::store_weights`]; the
    /// returned cost (row-serial multi-pulse programming) is also recorded
    /// in the ledger.
    ///
    /// # Panics
    ///
    /// Same conditions as [`VmmCrossbar::store_weights`].
    pub fn reprogram_weights(&mut self, weights: &[Vec<u32>]) -> OpCost {
        self.store_weights(weights);
        let cells = (self.rows * self.cols * self.slices) as f64;
        let cost = OpCost::new(
            star_device::Energy::new(self.tech.write_cell_pj * cells),
            Latency::new(self.tech.write_row_ns * self.rows as f64),
        );
        self.ledger.record(cost);
        star_telemetry::count("crossbar.vmm.reprograms", 1);
        star_telemetry::add("crossbar.vmm.write_energy_pj", cost.energy.value());
        cost
    }

    /// Running operation totals.
    pub fn ledger(&self) -> Ledger {
        self.ledger
    }

    /// Resets the operation totals.
    pub fn reset_ledger(&mut self) {
        self.ledger.reset();
    }
}

/// Stub RNG for the noiseless path (never actually sampled).
struct NoRng;

impl rand::RngCore for NoRng {
    fn next_u32(&mut self) -> u32 {
        unreachable!("noiseless multiply must not sample randomness")
    }
    fn next_u64(&mut self) -> u64 {
        unreachable!("noiseless multiply must not sample randomness")
    }
    fn fill_bytes(&mut self, _dest: &mut [u8]) {
        unreachable!("noiseless multiply must not sample randomness")
    }
    fn try_fill_bytes(&mut self, _dest: &mut [u8]) -> Result<(), rand::Error> {
        unreachable!("noiseless multiply must not sample randomness")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn vmm(rows: usize, cols: usize, wbits: u8, readout: Readout) -> VmmCrossbar {
        let tech = TechnologyParams::cmos32();
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        VmmCrossbar::new(rows, cols, wbits, readout, &tech, NoiseModel::ideal(), &mut rng)
    }

    #[test]
    fn ideal_multiply_matches_exact() {
        let mut x = vmm(8, 3, 6, Readout::Ideal);
        let w: Vec<Vec<u32>> =
            (0..8).map(|r| (0..3).map(|c| ((r * 7 + c * 13) % 64) as u32).collect()).collect();
        x.store_weights(&w);
        let inputs: Vec<u64> = (0..8).map(|i| (i * 3 % 16) as u64).collect();
        let exact = x.multiply_exact(&inputs);
        let analog = x.multiply(&inputs, 4);
        for (a, e) in analog.iter().zip(&exact) {
            assert!((a - *e as f64).abs() < 1e-9, "analog {a} vs exact {e}");
        }
    }

    #[test]
    fn doc_example_values() {
        let mut x = vmm(4, 2, 4, Readout::Ideal);
        x.store_weights(&[vec![1, 2], vec![3, 4], vec![5, 6], vec![7, 8]]);
        assert_eq!(x.multiply(&[1, 0, 2, 1], 2), vec![18.0, 22.0]);
        assert_eq!(x.multiply_exact(&[1, 0, 2, 1]), vec![18, 22]);
    }

    #[test]
    fn adc_readout_close_for_sparse_inputs() {
        // With few active rows, even a 5-bit ADC resolves exact counts for
        // small arrays.
        let mut x = vmm(16, 2, 4, Readout::Adc(AdcSpec::sar(5)));
        let w: Vec<Vec<u32>> = (0..16).map(|r| vec![(r % 16) as u32, 1]).collect();
        x.store_weights(&w);
        let mut inputs = vec![0u64; 16];
        inputs[3] = 1;
        inputs[7] = 1;
        let exact = x.multiply_exact(&inputs);
        let analog = x.multiply(&inputs, 1);
        for (a, e) in analog.iter().zip(&exact) {
            let err = (a - *e as f64).abs();
            assert!(err <= 2.0, "analog {a} vs exact {e}");
        }
    }

    #[test]
    fn stuck_fault_corrupts_weight() {
        let mut x = vmm(2, 1, 4, Readout::Ideal);
        x.store_weights(&[vec![0b1010], vec![0b0101]]);
        assert_eq!(x.effective_weight(0, 0), 0b1010);
        // MSB slice of weight (0,0) stuck off: 0b1010 -> 0b0010.
        x.cells[0][0].set_fault(star_device::StuckFault::StuckOff);
        assert_eq!(x.effective_weight(0, 0), 0b0010);
        let y = x.multiply_exact(&[1, 1]);
        assert_eq!(y[0], 0b0010 + 0b0101);
    }

    #[test]
    fn multiply_rejects_overflowing_inputs() {
        let mut x = vmm(2, 1, 2, Readout::Ideal);
        x.store_weights(&[vec![1], vec![1]]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            x.multiply(&[4, 0], 2);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn cost_scales_with_input_bits() {
        let x = vmm(128, 128, 2, Readout::Adc(AdcSpec::sar(5)));
        let c1 = x.vmm_cost(1);
        let c8 = x.vmm_cost(8);
        assert!((c8.energy.value() / c1.energy.value() - 8.0).abs() < 1e-9);
        assert!((c8.latency.value() / c1.latency.value() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn cost_sheet_includes_adcs_only_with_adc_readout() {
        let with = vmm(128, 128, 2, Readout::Adc(AdcSpec::sar(5))).cost_sheet("m", 1.0);
        let without = vmm(128, 128, 2, Readout::Ideal).cost_sheet("m", 1.0);
        assert!(with.items().iter().any(|i| i.name == "column adcs"));
        assert!(!without.items().iter().any(|i| i.name == "column adcs"));
        assert!(with.total_area().value() > without.total_area().value());
    }

    #[test]
    fn ir_drop_attenuates_and_hurts_far_corner() {
        let m = IrDropModel::typical();
        let g = 4e-5;
        // Near corner (last row, first column) vs far corner.
        let near = m.attenuation(127, 0, 128, 128, g);
        let far = m.attenuation(0, 127, 128, 128, g);
        assert!(near > far, "near {near} far {far}");
        assert!(near <= 1.0 && far > 0.9, "32 nm wires keep >90 % at 128 cells");
    }

    #[test]
    fn ir_drop_reduces_outputs() {
        let mut x = vmm(128, 1, 4, Readout::Ideal);
        let w: Vec<Vec<u32>> = (0..128).map(|_| vec![15]).collect();
        x.store_weights(&w);
        let inputs = vec![1u64; 128];
        let clean = x.multiply(&inputs, 1)[0];
        x.set_ir_drop(Some(IrDropModel::typical()));
        assert!(x.ir_drop().is_some());
        let dropped = x.multiply(&inputs, 1)[0];
        assert!(dropped <= clean, "IR drop must not amplify: {dropped} vs {clean}");
        // With rounding per slice the effect is small but present at 128 rows.
        let harsh = IrDropModel { wire_resistance_ohm: 250.0 };
        x.set_ir_drop(Some(harsh));
        let crushed = x.multiply(&inputs, 1)[0];
        assert!(crushed < clean * 0.9, "harsh wires must visibly attenuate: {crushed}");
    }

    #[test]
    fn mlc_multiply_matches_exact() {
        let tech = TechnologyParams::cmos32();
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        // 8-bit weights on 2-bit cells: 4 slices instead of 8.
        let mut x =
            VmmCrossbar::with_mlc(8, 2, 8, 2, Readout::Ideal, &tech, NoiseModel::ideal(), &mut rng);
        assert_eq!(x.slices(), 4);
        assert_eq!(x.bits_per_cell(), 2);
        assert_eq!(x.geometry().cols(), 8); // 2 logical × 4 slices
        let w: Vec<Vec<u32>> =
            (0..8).map(|r| vec![(r * 37 % 256) as u32, (r * 91 % 256) as u32]).collect();
        x.store_weights(&w);
        let inputs: Vec<u64> = (0..8).map(|i| (i % 8) as u64).collect();
        let exact = x.multiply_exact(&inputs);
        let analog = x.multiply(&inputs, 3);
        for (a, e) in analog.iter().zip(&exact) {
            assert!((a - *e as f64).abs() < 1e-9, "analog {a} vs exact {e}");
        }
        // Effective weights reconstruct the programmed codes.
        for (r, row) in w.iter().enumerate() {
            assert_eq!(x.effective_weight(r, 0), row[0]);
        }
    }

    #[test]
    fn mlc_halves_physical_columns_and_cost() {
        let slc = vmm(128, 16, 8, Readout::Adc(AdcSpec::sar(5)));
        let tech = TechnologyParams::cmos32();
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        let mlc = VmmCrossbar::with_mlc(
            128,
            16,
            8,
            2,
            Readout::Adc(AdcSpec::sar(5)),
            &tech,
            NoiseModel::ideal(),
            &mut rng,
        );
        assert_eq!(mlc.geometry().cols() * 2, slc.geometry().cols());
        // Fewer bitlines ⇒ fewer ADC conversions ⇒ cheaper VMM.
        assert!(mlc.vmm_cost(8).energy.value() < slc.vmm_cost(8).energy.value());
        assert!(
            mlc.cost_sheet("m", 1.0).total_area().value()
                < slc.cost_sheet("m", 1.0).total_area().value()
        );
    }

    #[test]
    fn mlc_odd_width_pads_top_slice() {
        let tech = TechnologyParams::cmos32();
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        // 5-bit weights on 2-bit cells: 3 slices (top slice holds 1 bit).
        let mut x =
            VmmCrossbar::with_mlc(4, 1, 5, 2, Readout::Ideal, &tech, NoiseModel::ideal(), &mut rng);
        assert_eq!(x.slices(), 3);
        x.store_weights(&[vec![31], vec![0], vec![17], vec![9]]);
        assert_eq!(x.effective_weight(0, 0), 31);
        assert_eq!(x.effective_weight(2, 0), 17);
        let y = x.multiply(&[1, 1, 1, 1], 1);
        assert_eq!(y[0], 57.0);
    }

    #[test]
    fn reprogram_costs_scale_with_array() {
        let mut small = vmm(16, 2, 4, Readout::Ideal);
        let mut large = vmm(64, 2, 4, Readout::Ideal);
        let ws: Vec<Vec<u32>> = (0..16).map(|_| vec![3, 5]).collect();
        let wl: Vec<Vec<u32>> = (0..64).map(|_| vec![3, 5]).collect();
        let cs = small.reprogram_weights(&ws);
        let cl = large.reprogram_weights(&wl);
        assert!((cl.latency.value() / cs.latency.value() - 4.0).abs() < 1e-9);
        assert!((cl.energy.value() / cs.energy.value() - 4.0).abs() < 1e-9);
        // Programming dominates reads by orders of magnitude.
        assert!(cs.energy.value() > small.vmm_cost(4).energy.value() * 10.0);
        assert_eq!(small.ledger().ops, 1);
        // Functional equivalence with store_weights.
        assert_eq!(small.effective_weight(3, 1), 5);
    }

    #[test]
    fn noisy_multiply_is_unbiased() {
        let tech = TechnologyParams::cmos32();
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let noise = NoiseModel::new(0.0, 0.02, 0.0, 0.0);
        let mut x = VmmCrossbar::new(32, 1, 4, Readout::Ideal, &tech, noise, &mut rng);
        let w: Vec<Vec<u32>> = (0..32).map(|r| vec![(r % 16) as u32]).collect();
        x.store_weights(&w);
        let inputs = vec![1u64; 32];
        let exact = x.multiply_exact(&inputs)[0] as f64;
        let mut sum = 0.0;
        let n = 200;
        for _ in 0..n {
            sum += x.multiply_with(&inputs, 1, &mut rng)[0];
        }
        let mean = sum / n as f64;
        assert!((mean / exact - 1.0).abs() < 0.02, "mean {mean} vs exact {exact}");
    }
}
