//! Property-based tests for the crossbar array simulators.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use star_crossbar::{
    CamCrossbar, CamSubCrossbar, DifferentialVmm, LutCrossbar, OpCost, Readout, VmmCrossbar,
};
use star_device::{Energy, Latency, NoiseModel, TechnologyParams};
use star_fixed::{Fixed, QFormat};

fn tech() -> TechnologyParams {
    TechnologyParams::cmos32()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cam_search_matches_stored_patterns(
        patterns in prop::collection::vec(prop::collection::vec(any::<bool>(), 5), 4..16),
        key_idx in any::<prop::sample::Index>(),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut cam = CamCrossbar::new(patterns.len(), 5, &tech(), NoiseModel::ideal(), &mut rng);
        for (r, p) in patterns.iter().enumerate() {
            cam.store_row(r, p);
        }
        let key = &patterns[key_idx.index(patterns.len())];
        let hits = cam.search(key);
        for (r, p) in patterns.iter().enumerate() {
            prop_assert_eq!(hits[r], p == key, "row {}", r);
        }
    }

    #[test]
    fn cam_sub_max_matches_reference(raws in prop::collection::vec(-255i64..=255, 1..48)) {
        let fmt = QFormat::new(5, 3).expect("valid");
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut xbar = CamSubCrossbar::new(fmt, &tech(), NoiseModel::ideal(), &mut rng);
        let xs: Vec<Fixed> = raws.iter().map(|&r| Fixed::from_raw(r, fmt)).collect();
        let found = xbar.find_max(&xs).expect("ideal array");
        let reference = xs.iter().copied().max().expect("non-empty");
        prop_assert_eq!(found.max.raw(), reference.raw());
    }

    #[test]
    fn cam_sub_subtract_is_clamped_difference(a in -255i64..=255, b in -255i64..=255) {
        let fmt = QFormat::new(5, 3).expect("valid");
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut xbar = CamSubCrossbar::new(fmt, &tech(), NoiseModel::ideal(), &mut rng);
        let (x, m) = (Fixed::from_raw(a.min(b), fmt), Fixed::from_raw(a.max(b), fmt));
        let d = xbar.subtract(x, m);
        let expected = (x.raw() - m.raw()).clamp(fmt.min_raw(), 0);
        prop_assert_eq!(d.raw(), expected);
    }

    #[test]
    fn vmm_ideal_matches_exact(
        weights in prop::collection::vec(prop::collection::vec(0u32..64, 3), 2..12),
        seed in 0u64..1000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let rows = weights.len();
        let mut xbar =
            VmmCrossbar::new(rows, 3, 6, Readout::Ideal, &tech(), NoiseModel::ideal(), &mut rng);
        xbar.store_weights(&weights);
        use rand::Rng as _;
        let inputs: Vec<u64> = (0..rows).map(|_| rng.gen_range(0..16)).collect();
        let exact = xbar.multiply_exact(&inputs);
        let analog = xbar.multiply(&inputs, 4);
        for (a, e) in analog.iter().zip(&exact) {
            prop_assert!((a - *e as f64).abs() < 1e-9, "{} vs {}", a, e);
        }
    }

    #[test]
    fn differential_vmm_signed_reference(
        weights in prop::collection::vec(prop::collection::vec(-31i32..=31, 2), 2..10),
        seed in 0u64..1000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let rows = weights.len();
        let mut xbar = DifferentialVmm::new(
            rows, 2, 5, Readout::Ideal, &tech(), NoiseModel::ideal(), &mut rng,
        );
        xbar.store_signed_weights(&weights);
        use rand::Rng as _;
        let inputs: Vec<u64> = (0..rows).map(|_| rng.gen_range(0..8)).collect();
        let analog = xbar.multiply(&inputs, 3);
        for c in 0..2 {
            let reference: i64 = weights
                .iter()
                .enumerate()
                .map(|(r, row)| inputs[r] as i64 * row[c] as i64)
                .sum();
            prop_assert!((analog[c] - reference as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn lut_round_trips_any_word(words in prop::collection::vec(0u64..(1 << 18), 2..32)) {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut lut =
            LutCrossbar::new(words.len(), 18, &tech(), NoiseModel::ideal(), &mut rng);
        for (r, &w) in words.iter().enumerate() {
            lut.store_word(r, w);
        }
        for (r, &w) in words.iter().enumerate() {
            prop_assert_eq!(lut.read_row(r), w);
        }
    }

    #[test]
    fn op_cost_algebra(
        e1 in 0.0f64..100.0, l1 in 0.0f64..100.0,
        e2 in 0.0f64..100.0, l2 in 0.0f64..100.0,
        n in 1u64..50,
    ) {
        let a = OpCost::new(Energy::new(e1), Latency::new(l1));
        let b = OpCost::new(Energy::new(e2), Latency::new(l2));
        // `then` adds both components; `alongside` adds energy, maxes time.
        let s = a.then(b);
        prop_assert!((s.energy.value() - (e1 + e2)).abs() < 1e-9);
        prop_assert!((s.latency.value() - (l1 + l2)).abs() < 1e-9);
        let p = a.alongside(b);
        prop_assert!((p.energy.value() - (e1 + e2)).abs() < 1e-9);
        prop_assert!((p.latency.value() - l1.max(l2)).abs() < 1e-9);
        // Parallel never slower than serial, never cheaper in energy.
        prop_assert!(p.latency.value() <= s.latency.value());
        let r = a.repeat(n);
        prop_assert!((r.energy.value() - e1 * n as f64).abs() < 1e-6);
        prop_assert!((r.latency.value() - l1 * n as f64).abs() < 1e-6);
    }

    #[test]
    fn stage1_cost_linear_in_inputs(n in 1usize..200, m in 1usize..200) {
        let fmt = QFormat::new(5, 2).expect("valid");
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let xbar = CamSubCrossbar::new(fmt, &tech(), NoiseModel::ideal(), &mut rng);
        let (lo, hi) = (n.min(m), n.max(m));
        let a = xbar.stage1_cost(lo);
        let b = xbar.stage1_cost(hi);
        prop_assert!(b.energy.value() >= a.energy.value());
        prop_assert!(b.latency.value() >= a.latency.value());
    }
}
