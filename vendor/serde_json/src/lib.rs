//! Offline vendored `serde_json` subset.
//!
//! Works over the vendored `serde` crate's [`Content`] data model:
//! [`Value`] is an alias for `serde::Content`, [`to_string`] /
//! [`to_string_pretty`] render any `Serialize` type, [`from_str`] parses
//! JSON text back into any `Deserialize` type, and the [`json!`] macro
//! builds `Value` trees with embedded Rust expressions.
//!
//! Floats are rendered with Rust's shortest round-trip formatting, so
//! `f64` values survive serialize → parse exactly.

// Vendored stand-in for the external crate: keep clippy quiet here so
// `-D warnings` stays meaningful for first-party code.
#![allow(clippy::all)]
#![forbid(unsafe_code)]

use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;

/// A JSON value (alias of the vendored serde data model).
pub type Value = Content;

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_content())
}

/// Reconstructs a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns an error when the tree does not match `T`'s shape.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_content(&value).map_err(Error::from)
}

/// Serializes `value` to compact JSON text.
///
/// # Errors
///
/// Never fails in this vendored subset (signature kept for parity).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON text (two-space indent).
///
/// # Errors
///
/// Never fails in this vendored subset (signature kept for parity).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_content(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Shortest round-trip representation; force a `.0` suffix so the
        // output re-parses as a float-shaped number.
        let s = format!("{v}");
        let float_shaped = s.contains('.') || s.contains('e') || s.contains('E');
        out.push_str(&s);
        if !float_shaped {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn error(&self, message: &str) -> Error {
        Error::new(format!("{message} at byte {}", self.pos))
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        let value = self.parse_value()?;
        self.skip_whitespace();
        if self.pos != self.bytes.len() {
            return Err(self.error("trailing characters"));
        }
        Ok(value)
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') => {
                if self.consume_literal("null") {
                    Ok(Content::Null)
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b't') => {
                if self.consume_literal("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.consume_literal("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("unexpected character")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.error("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.error("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the raw bytes.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk =
                        self.bytes.get(start..end).ok_or_else(|| self.error("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>().map(Content::F64).map_err(|_| self.error("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_value(text: &str) -> Result<Value, Error> {
    Parser::new(text).parse()
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

/// Builds a [`Value`] from a JSON-ish literal with embedded expressions.
///
/// Supports the same shapes this workspace uses: `null`, booleans,
/// numbers, strings, arrays, objects with string-literal keys, and any
/// `Serialize` expression in value position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => { $crate::json_array!([$($tt)*] -> []) };
    ({ $($tt:tt)* }) => { $crate::json_object!({$($tt)*} -> []) };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}

/// Internal TT-muncher for `json!` arrays. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    // Entry: empty array.
    ([] -> [$($done:expr),*]) => {
        $crate::Value::Seq(::std::vec![$($done),*])
    };
    // Next element is a nested array.
    ([ [ $($inner:tt)* ] , $($rest:tt)* ] -> [$($done:expr),*]) => {
        $crate::json_array!([$($rest)*] -> [$($done,)* $crate::json!([$($inner)*])])
    };
    ([ [ $($inner:tt)* ] ] -> [$($done:expr),*]) => {
        $crate::json_array!([] -> [$($done,)* $crate::json!([$($inner)*])])
    };
    // Next element is a nested object.
    ([ { $($inner:tt)* } , $($rest:tt)* ] -> [$($done:expr),*]) => {
        $crate::json_array!([$($rest)*] -> [$($done,)* $crate::json!({$($inner)*})])
    };
    ([ { $($inner:tt)* } ] -> [$($done:expr),*]) => {
        $crate::json_array!([] -> [$($done,)* $crate::json!({$($inner)*})])
    };
    // Next element is a JSON keyword.
    ([ null , $($rest:tt)* ] -> [$($done:expr),*]) => {
        $crate::json_array!([$($rest)*] -> [$($done,)* $crate::Value::Null])
    };
    ([ null ] -> [$($done:expr),*]) => {
        $crate::json_array!([] -> [$($done,)* $crate::Value::Null])
    };
    ([ true , $($rest:tt)* ] -> [$($done:expr),*]) => {
        $crate::json_array!([$($rest)*] -> [$($done,)* $crate::Value::Bool(true)])
    };
    ([ true ] -> [$($done:expr),*]) => {
        $crate::json_array!([] -> [$($done,)* $crate::Value::Bool(true)])
    };
    ([ false , $($rest:tt)* ] -> [$($done:expr),*]) => {
        $crate::json_array!([$($rest)*] -> [$($done,)* $crate::Value::Bool(false)])
    };
    ([ false ] -> [$($done:expr),*]) => {
        $crate::json_array!([] -> [$($done,)* $crate::Value::Bool(false)])
    };
    // Next element is a plain expression.
    ([ $next:expr , $($rest:tt)* ] -> [$($done:expr),*]) => {
        $crate::json_array!([$($rest)*] -> [$($done,)* $crate::json!($next)])
    };
    ([ $next:expr ] -> [$($done:expr),*]) => {
        $crate::json_array!([] -> [$($done,)* $crate::json!($next)])
    };
}

/// Internal TT-muncher for `json!` objects. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    ({} -> [$($done:expr),*]) => {
        $crate::Value::Map(::std::vec![$($done),*])
    };
    // key: nested array.
    ({ $key:literal : [ $($inner:tt)* ] , $($rest:tt)* } -> [$($done:expr),*]) => {
        $crate::json_object!({$($rest)*} ->
            [$($done,)* (::std::string::String::from($key), $crate::json!([$($inner)*]))])
    };
    ({ $key:literal : [ $($inner:tt)* ] $(,)? } -> [$($done:expr),*]) => {
        $crate::json_object!({} ->
            [$($done,)* (::std::string::String::from($key), $crate::json!([$($inner)*]))])
    };
    // key: nested object.
    ({ $key:literal : { $($inner:tt)* } , $($rest:tt)* } -> [$($done:expr),*]) => {
        $crate::json_object!({$($rest)*} ->
            [$($done,)* (::std::string::String::from($key), $crate::json!({$($inner)*}))])
    };
    ({ $key:literal : { $($inner:tt)* } $(,)? } -> [$($done:expr),*]) => {
        $crate::json_object!({} ->
            [$($done,)* (::std::string::String::from($key), $crate::json!({$($inner)*}))])
    };
    // key: JSON keyword.
    ({ $key:literal : null , $($rest:tt)* } -> [$($done:expr),*]) => {
        $crate::json_object!({$($rest)*} ->
            [$($done,)* (::std::string::String::from($key), $crate::Value::Null)])
    };
    ({ $key:literal : null $(,)? } -> [$($done:expr),*]) => {
        $crate::json_object!({} ->
            [$($done,)* (::std::string::String::from($key), $crate::Value::Null)])
    };
    // key: plain expression.
    ({ $key:literal : $value:expr , $($rest:tt)* } -> [$($done:expr),*]) => {
        $crate::json_object!({$($rest)*} ->
            [$($done,)* (::std::string::String::from($key), $crate::json!($value))])
    };
    ({ $key:literal : $value:expr } -> [$($done:expr),*]) => {
        $crate::json_object!({} ->
            [$($done,)* (::std::string::String::from($key), $crate::json!($value))])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = json!({"a": 1, "b": [true, null, 2.5], "c": "x\"y"});
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"a":1,"b":[true,null,2.5],"c":"x\"y"}"#);
    }

    #[test]
    fn pretty_rendering_has_indentation() {
        let v = json!({"a": [1, 2]});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  \"a\""), "{s}");
        assert!(s.contains("\n    1"), "{s}");
    }

    #[test]
    fn parse_round_trip() {
        let v = json!({"name": "STAR", "bits": 9, "ratios": [0.06, 0.05], "adc": null});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &f in &[std::f64::consts::PI, 1e-300, -2.2250738585072014e-308, 0.1] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(f, back, "{text}");
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v: Value = from_str(r#""a\nA\"b° ""#).unwrap();
        assert_eq!(v, Content::Str("a\nA\"b° ".to_string()));
    }

    #[test]
    fn parse_errors_reported() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn expression_values_embed() {
        let xs = vec![1.5f64, 2.5];
        let n = 7u32;
        let v = json!({"xs": xs, "n": n, "nested": {"sum": 4.0}});
        assert_eq!(v.get("n"), Some(&Content::I64(7)));
        assert_eq!(v.get("nested").and_then(|m| m.get("sum")), Some(&Content::F64(4.0)));
    }

    #[test]
    fn trailing_comma_in_object() {
        let v = json!({"a": 1, "b": 2,});
        assert_eq!(v.get("b"), Some(&Content::I64(2)));
    }
}
