//! Offline vendored subset of `proptest`.
//!
//! Implements just the surface this workspace uses: the [`proptest!`] macro
//! (with optional `#![proptest_config(..)]`), deterministic strategies for
//! integer/float ranges, tuples, `prop_map`/`prop_filter`, `Just`,
//! `prop::collection::vec`, `prop::sample::{select, Index}`, `any::<T>()`
//! for `bool` and `Index`, and the `prop_assert*` macros.
//!
//! Generation is fully deterministic: every test case draws from a
//! SplitMix64 stream seeded by an FNV-1a hash of the test name mixed with
//! the case number, so failures reproduce across runs without a persistence
//! file. No shrinking is performed; the failing input is reported as-is.

// Vendored stand-in for the external crate: keep clippy quiet here so
// `-D warnings` stays meaningful for first-party code.
#![allow(clippy::all)]
#![forbid(unsafe_code)]

pub mod test_runner {
    /// Configuration for a property test (the `ProptestConfig` of upstream).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum consecutive `prop_filter` rejections before giving up.
        pub max_global_rejects: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases, ..Config::default() }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64, max_global_rejects: 65_536 }
        }
    }

    /// Failure raised by `prop_assert!` and friends.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError { message: message.into() }
        }
        /// Upstream-compatible constructor (`TestCaseError::Fail(reason)`).
        pub fn reject(message: impl Into<String>) -> Self {
            Self::fail(message)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic SplitMix64 stream used for value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in [0, 1).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform u64 below `n` (n > 0).
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Rejection sampling to avoid modulo bias on huge spans.
            let zone = u64::MAX - (u64::MAX % n);
            loop {
                let v = self.next_u64();
                if v < zone || zone == 0 {
                    return v % n;
                }
            }
        }
    }

    /// Drives the cases of one property test.
    pub struct TestRunner {
        config: Config,
    }

    impl TestRunner {
        pub fn new(config: Config) -> Self {
            TestRunner { config }
        }

        pub fn config(&self) -> &Config {
            &self.config
        }

        fn fnv1a(name: &str) -> u64 {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01B3);
            }
            h
        }

        /// Run `cases` deterministic cases of `f` over values drawn from
        /// `strategy`. Panics (failing the enclosing `#[test]`) on the first
        /// case that returns `Err`.
        pub fn run_named<S, F>(&mut self, name: &str, strategy: &S, mut f: F)
        where
            S: crate::strategy::Strategy,
            F: FnMut(S::Value) -> TestCaseResult,
        {
            let base = Self::fnv1a(name);
            for case in 0..self.config.cases {
                let mut rng =
                    TestRng::new(base ^ (case as u64).wrapping_mul(0xA076_1D64_78BD_642F));
                let value = strategy.new_value(&mut rng);
                if let Err(e) = f(value) {
                    panic!(
                        "proptest: property '{name}' failed at case {case}/{cases}: {e}",
                        cases = self.config.cases,
                    );
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A deterministic value generator.
    pub trait Strategy {
        type Value;

        /// Draw one value from the strategy.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<T, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, map }
        }

        /// Reject values failing `pred` (regenerating up to a bounded number
        /// of times; `whence` names the filter in the panic message).
        fn prop_filter<W, F>(self, whence: W, pred: F) -> Filter<Self>
        where
            Self: Sized,
            W: Into<String>,
            F: Fn(&Self::Value) -> bool + 'static,
        {
            Filter { inner: self, whence: whence.into(), pred: Box::new(pred) }
        }

        /// Box the strategy, erasing its concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { inner: std::rc::Rc::new(self) }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) map: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.map)(self.inner.new_value(rng))
        }
    }

    pub struct Filter<S: Strategy> {
        pub(crate) inner: S,
        pub(crate) whence: String,
        pub(crate) pred: Box<dyn Fn(&S::Value) -> bool>,
    }

    impl<S: Strategy> Strategy for Filter<S> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..65_536 {
                let v = self.inner.new_value(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("proptest: filter '{}' rejected 65536 consecutive values", self.whence);
        }
    }

    /// Type-erased strategy handle (`.boxed()`).
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.inner.new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let lo = self.start as i128;
                    let span = (self.end as i128 - lo) as u128;
                    let draw = if span > u64::MAX as u128 {
                        rng.next_u64() as u128
                    } else {
                        rng.below(span as u64) as u128
                    };
                    (lo + draw as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128;
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    let draw = if span > u64::MAX as u128 {
                        rng.next_u64() as u128
                    } else {
                        rng.below(span as u64) as u128
                    };
                    (lo + draw as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let f = rng.next_f64() as $t;
                    let v = self.start + f * (self.end - self.start);
                    if v >= self.end { self.start } else { v }
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (rng.next_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: an exact size, `lo..hi`, or
    /// `lo..=hi`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl SizeRange {
        pub fn lo(&self) -> usize {
            self.lo
        }
        pub fn hi_inclusive(&self) -> usize {
            self.hi_inclusive
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A position drawn uniformly, later projected onto a concrete
    /// collection length via [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// Map this abstract index onto `0..size`. Panics when `size == 0`.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            (self.0 % size as u64) as usize
        }
    }

    impl crate::arbitrary::Arbitrary for Index {
        fn arbitrary_with(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }

    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }

    /// `prop::sample::select(options)` — uniform choice from a non-empty vec.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty options");
        Select { options }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical generation strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary_with(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_with(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary_with(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary_with(rng: &mut TestRng) -> Self {
            // Bounded draw: uniform in [-1e6, 1e6]; full-bit-pattern f64s
            // (NaN/inf) are rarely what property tests want.
            (rng.next_f64() - 0.5) * 2e6
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_with(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// The `prop::` namespace as re-exported by the prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy;
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{
        Config as ProptestConfig, TestCaseError, TestCaseResult, TestRunner,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (@cfg ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            let mut __runner = $crate::test_runner::TestRunner::new(__config);
            let __strategy = ($($strat,)+);
            __runner.run_named(
                stringify!($name),
                &__strategy,
                |($($arg,)+)| -> $crate::test_runner::TestCaseResult {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                },
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)` — fail the
/// current case (returning `Err`) without unwinding through user code.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn int_ranges_in_bounds(a in -50i64..50, b in 0u8..=7) {
            prop_assert!((-50..50).contains(&a));
            prop_assert!(b <= 7);
        }

        #[test]
        fn float_range_in_bounds(x in -2.5f64..2.5) {
            prop_assert!((-2.5..2.5).contains(&x));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u32..10, 3..6)) {
            prop_assert!((3..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn exact_vec_size(v in prop::collection::vec(any::<bool>(), 5)) {
            prop_assert_eq!(v.len(), 5);
        }

        #[test]
        fn select_picks_member(d in prop::sample::select(vec![2u32, 4, 8])) {
            prop_assert!(d == 2 || d == 4 || d == 8);
        }

        #[test]
        fn index_projects(ix in any::<prop::sample::Index>()) {
            prop_assert!(ix.index(7) < 7);
        }

        #[test]
        fn map_and_filter(pair in (0u8..=8, 0u8..=6)
            .prop_filter("non-empty", |&(i, f)| i + f > 0)
            .prop_map(|(i, f)| (i as u32) * 10 + f as u32))
        {
            prop_assert!(pair > 0);
            // Early return must type-check inside the closure.
            if pair > 1000 {
                return Ok(());
            }
        }
    }

    #[test]
    fn deterministic_across_runners() {
        use crate::strategy::Strategy;
        let strat = (0u64..1_000_000, -1.0f64..1.0);
        let mut first = Vec::new();
        for pass in 0..2 {
            let mut rng = crate::test_runner::TestRng::new(42);
            let vals: Vec<_> = (0..16).map(|_| strat.new_value(&mut rng)).collect();
            if pass == 0 {
                first = vals;
            } else {
                assert_eq!(first, vals);
            }
        }
    }
}
