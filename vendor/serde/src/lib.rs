//! Offline vendored `serde` subset.
//!
//! The build container has no crates-io access, so the workspace patches
//! `serde` to this crate. It keeps the two public trait names the codebase
//! imports (`Serialize`, `Deserialize`) and the derive macros, but swaps
//! serde's visitor architecture for a much simpler JSON-shaped data model:
//! every serializable value converts to/from a [`Content`] tree, and the
//! companion vendored `serde_json` renders/parses that tree.
//!
//! Supported shapes (everything this repository derives):
//!
//! - structs with named fields → maps,
//! - tuple structs (1 field → the inner value, n fields → sequences),
//! - unit structs → `null`,
//! - enums with unit variants → `"VariantName"`,
//! - enums with one-field tuple variants → `{"VariantName": value}`,
//! - the usual primitive / `Vec` / `Option` / tuple / map impls.

// Vendored stand-in for the external crate: keep clippy quiet here so
// `-D warnings` stays meaningful for first-party code.
#![allow(clippy::all)]
#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree — the data model of this vendored serde.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Content>),
    /// Key → value map, insertion ordered.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::I64(v) => Some(v as f64),
            Content::U64(v) => Some(v as f64),
            Content::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::I64(v) if v >= 0 => Some(v as u64),
            Content::U64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an `i64` if it is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::I64(v) => Some(v),
            Content::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            _ => None,
        }
    }

    /// The value as a `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Content::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a slice of elements if it is a sequence.
    pub fn as_array(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(v) => Some(v),
            _ => None,
        }
    }

    /// A short name for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) | Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with a message.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError { message: message.into() }
    }

    fn expected(what: &str, got: &Content) -> Self {
        DeError::custom(format!("expected {what}, found {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into the [`Content`] data model.
pub trait Serialize {
    /// Converts `self` into a content tree.
    fn to_content(&self) -> Content;
}

/// Types reconstructible from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds a value from a content tree.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when the tree does not match the type's shape.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

/// Owned-deserialization alias mirroring serde's `DeserializeOwned`.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match *content {
                    Content::I64(v) => <$t>::try_from(v)
                        .map_err(|_| DeError::custom("integer out of range")),
                    Content::U64(v) => <$t>::try_from(v)
                        .map_err(|_| DeError::custom("integer out of range")),
                    Content::F64(v) if v.fract() == 0.0 => Ok(v as $t),
                    ref other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}

signed_impl!(i8, i16, i32, i64, isize);

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let wide = *self as u64;
                if wide <= i64::MAX as u64 {
                    Content::I64(wide as i64)
                } else {
                    Content::U64(wide)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match *content {
                    Content::I64(v) => <$t>::try_from(v)
                        .map_err(|_| DeError::custom("integer out of range")),
                    Content::U64(v) => <$t>::try_from(v)
                        .map_err(|_| DeError::custom("integer out of range")),
                    Content::F64(v) if v.fract() == 0.0 && v >= 0.0 => Ok(v as $t),
                    ref other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}

unsigned_impl!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        if self.is_finite() {
            Content::F64(*self)
        } else {
            Content::Null // serde_json serializes non-finite floats as null
        }
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content.as_f64().ok_or_else(|| DeError::expected("number", content))
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        (*self as f64).to_content()
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match *content {
            Content::Bool(b) => Ok(b),
            ref other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::expected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(()),
            other => Err(DeError::expected("null", other)),
        }
    }
}

macro_rules! tuple_impl {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::Seq(items) => {
                        let expected = 0usize $(+ { let _ = $idx; 1 })+;
                        if items.len() != expected {
                            return Err(DeError::custom(format!(
                                "expected tuple of {expected}, found sequence of {}",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_content(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected("sequence", other)),
                }
            }
        }
    )+};
}

tuple_impl!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.clone(), v.to_content())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::from_content(v)?))).collect()
            }
            other => Err(DeError::expected("map", other)),
        }
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn to_content(&self) -> Content {
        let mut entries: Vec<(String, Content)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_content())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0)); // stable output
        Content::Map(entries)
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

/// Helpers the derive macro expands to. Not public API.
#[doc(hidden)]
pub mod __private {
    pub use super::{Content, DeError, Deserialize, Serialize};

    /// Fetches a required struct field during derived deserialization.
    pub fn field<T: Deserialize>(map: &Content, name: &str) -> Result<T, DeError> {
        match map.get(name) {
            Some(v) => {
                T::from_content(v).map_err(|e| DeError::custom(format!("field `{name}`: {e}")))
            }
            None => Err(DeError::custom(format!("missing field `{name}`"))),
        }
    }

    /// Fetches a required tuple-struct element during derived
    /// deserialization.
    pub fn element<T: Deserialize>(seq: &[Content], idx: usize) -> Result<T, DeError> {
        match seq.get(idx) {
            Some(v) => {
                T::from_content(v).map_err(|e| DeError::custom(format!("element {idx}: {e}")))
            }
            None => Err(DeError::custom(format!("missing tuple element {idx}"))),
        }
    }
}

/// Serde's `de` module surface, kept so `use serde::de::...` paths resolve.
pub mod de {
    pub use super::{DeError as Error, Deserialize, DeserializeOwned};
}

/// Serde's `ser` module surface.
pub mod ser {
    pub use super::Serialize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::from_content(&42i32.to_content()).unwrap(), 42);
        assert_eq!(u8::from_content(&7u8.to_content()).unwrap(), 7);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert_eq!(bool::from_content(&true.to_content()).unwrap(), true);
        assert_eq!(String::from_content(&"hi".to_string().to_content()).unwrap(), "hi");
    }

    #[test]
    fn integral_float_cross_decodes() {
        // "1" in JSON may decode into f64; 1.0 may decode into u64.
        assert_eq!(f64::from_content(&Content::I64(3)).unwrap(), 3.0);
        assert_eq!(u64::from_content(&Content::F64(4.0)).unwrap(), 4);
        assert!(u64::from_content(&Content::F64(4.5)).is_err());
    }

    #[test]
    fn vec_and_option() {
        let v = vec![1.0f64, 2.0, 3.0];
        let c = v.to_content();
        assert_eq!(Vec::<f64>::from_content(&c).unwrap(), v);
        assert_eq!(Option::<f64>::from_content(&Content::Null).unwrap(), None);
        assert_eq!(Option::<f64>::from_content(&Content::F64(2.5)).unwrap(), Some(2.5));
    }

    #[test]
    fn nonfinite_floats_are_null() {
        assert_eq!(f64::NAN.to_content(), Content::Null);
        assert_eq!(f64::INFINITY.to_content(), Content::Null);
    }

    #[test]
    fn map_lookup() {
        let m = Content::Map(vec![("a".into(), Content::I64(1))]);
        assert_eq!(m.get("a"), Some(&Content::I64(1)));
        assert_eq!(m.get("b"), None);
    }

    #[test]
    fn tuples_round_trip() {
        let t = (1usize, 2.5f64);
        let c = t.to_content();
        assert_eq!(<(usize, f64)>::from_content(&c).unwrap(), t);
    }
}
