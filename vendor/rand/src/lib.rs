//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build container for this reproduction has no network access and no
//! crates-io cache, so the workspace patches `rand` to this hand-written
//! subset (see `[patch.crates-io]` in the root `Cargo.toml`). It provides
//! exactly the surface the STAR codebase uses:
//!
//! - [`RngCore`] / [`SeedableRng`] / [`Rng`] traits,
//! - uniform sampling via [`Rng::gen`], [`Rng::gen_range`],
//!   [`Rng::gen_bool`],
//! - the [`Error`] type referenced by `RngCore::try_fill_bytes`.
//!
//! The numeric streams are high quality (the companion vendored
//! `rand_chacha` implements the real ChaCha8 core) but are **not**
//! guaranteed to be bit-identical to upstream `rand`; every consumer in
//! this repository only relies on determinism-per-seed, which holds.

// Vendored stand-in for the external crate: keep clippy quiet here so
// `-D warnings` stays meaningful for first-party code.
#![allow(clippy::all)]
#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (API-compatible placeholder).
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    pub fn new_static(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core trait every random-number generator implements.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed material type (e.g. `[u8; 32]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// exactly like upstream `rand` 0.8 does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (Vigna), as used by rand_core 0.6.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z = z ^ (z >> 31);
            let bytes = (z as u32).to_le_bytes();
            for (dst, src) in chunk.iter_mut().zip(bytes.iter()) {
                *dst = *src;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn uniformly from the generator's "standard"
/// distribution (unit interval for floats, full range for integers).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

/// Ranges a value of type `T` can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let v = uniform_u64(rng, span);
                ((self.start as $wide).wrapping_add(v as $wide)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let v = uniform_u64(rng, span + 1);
                ((start as $wide).wrapping_add(v as $wide)) as $t
            }
        }
    )*};
}

int_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

/// Unbiased uniform draw in `[0, span)` (`span > 0`) via rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                start + u * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64::sample_standard(self) < p
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Minimal `rngs` module for API parity.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng { state: u64::from_le_bytes(seed) }
        }
    }
}

/// `prelude` re-exports matching upstream.
pub mod prelude {
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: usize = rng.gen_range(3usize..=3);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..4096 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 4096.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
