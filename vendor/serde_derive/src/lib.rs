//! Offline vendored `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` implemented directly on `proc_macro` token
//! streams (the container has no `syn`/`quote`).
//!
//! Supported item shapes — everything the STAR workspace derives:
//!
//! - structs with named fields,
//! - tuple structs (1-field newtypes serialize transparently, wider ones
//!   as sequences),
//! - unit structs,
//! - enums whose variants are unit or single-field tuple variants.
//!
//! Generics and `#[serde(...)]` attributes are intentionally unsupported
//! and produce a compile error pointing here.

// Vendored stand-in for the external crate: keep clippy quiet here so
// `-D warnings` stays meaningful for first-party code.
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a struct.
struct NamedField {
    name: String,
}

/// One parsed variant of an enum.
struct Variant {
    name: String,
    /// `true` for a single-field tuple variant, `false` for a unit variant.
    newtype: bool,
}

/// The parsed item shape.
enum Item {
    NamedStruct { name: String, fields: Vec<NamedField> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});").parse().expect("valid error tokens")
}

/// Skips `#[...]` attribute pairs starting at `*i`.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while *i + 1 < tokens.len() {
        let is_hash = matches!(&tokens[*i], TokenTree::Punct(p) if p.as_char() == '#');
        let is_bracket = matches!(
            &tokens[*i + 1],
            TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket
        );
        if is_hash && is_bracket {
            *i += 2;
        } else {
            break;
        }
    }
}

/// Skips `pub`, `pub(crate)`, `pub(super)`, … starting at `*i`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(&tokens[*i], TokenTree::Ident(id) if id.to_string() == "pub") {
        *i += 1;
        if *i < tokens.len()
            && matches!(
                &tokens[*i],
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis
            )
        {
            *i += 1;
        }
    }
}

/// Counts the comma-separated segments of a tuple-struct body, treating
/// commas inside `<...>` or nested groups as part of one segment.
fn tuple_arity(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut arity = 0usize;
    let mut pending = false;
    let mut angle_depth = 0i32;
    for tok in &tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if pending {
                    arity += 1;
                }
                pending = false;
            }
            _ => pending = true,
        }
    }
    if pending {
        arity += 1;
    }
    arity
}

/// Parses the named fields of a brace-delimited struct body.
fn named_fields(group: &proc_macro::Group) -> Result<Vec<NamedField>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found `{other}`")),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, found `{other}`")),
        }
        // Skip the type: everything until a comma at angle depth zero.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(NamedField { name });
    }
    Ok(fields)
}

/// Parses the variants of a brace-delimited enum body.
fn enum_variants(group: &proc_macro::Group) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found `{other}`")),
        };
        i += 1;
        let mut newtype = false;
        if i < tokens.len() {
            match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    let arity = tuple_arity(g);
                    if arity != 1 {
                        return Err(format!(
                            "variant `{name}` has {arity} fields; only unit and \
                             single-field tuple variants are supported"
                        ));
                    }
                    newtype = true;
                    i += 1;
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    return Err(format!(
                        "variant `{name}` has named fields, which the vendored \
                         serde_derive does not support"
                    ));
                }
                _ => {}
            }
        }
        // Skip a possible discriminant and the trailing comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, newtype });
    }
    Ok(variants)
}

/// Parses the derive input item.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found `{other}`")),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected item name, found `{other}`")),
    };
    i += 1;
    if i < tokens.len() && matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '<') {
        return Err(format!(
            "`{name}` is generic; the vendored serde_derive only supports \
             concrete types"
        ));
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct { name, fields: named_fields(g)? })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct { name, arity: tuple_arity(g) })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::Enum { name, variants: enum_variants(g)? })
            }
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let body = match &item {
        Item::NamedStruct { fields, .. } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({n:?}), \
                         ::serde::Serialize::to_content(&self.{n}))",
                        n = f.name
                    )
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "))
        }
        Item::TupleStruct { arity: 1, .. } => "::serde::Serialize::to_content(&self.0)".to_string(),
        Item::TupleStruct { arity, .. } => {
            let entries: Vec<String> =
                (0..*arity).map(|i| format!("::serde::Serialize::to_content(&self.{i})")).collect();
            format!("::serde::Content::Seq(::std::vec![{}])", entries.join(", "))
        }
        Item::UnitStruct { .. } => "::serde::Content::Null".to_string(),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    if v.newtype {
                        format!(
                            "{name}::{v}(inner) => ::serde::Content::Map(::std::vec![\
                             (::std::string::String::from({v:?}), \
                             ::serde::Serialize::to_content(inner))]),",
                            name = name,
                            v = v.name
                        )
                    } else {
                        format!(
                            "{name}::{v} => ::serde::Content::Str(\
                             ::std::string::String::from({v:?})),",
                            name = name,
                            v = v.name
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    let name = match &item {
        Item::NamedStruct { name, .. }
        | Item::TupleStruct { name, .. }
        | Item::UnitStruct { name }
        | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let (name, body) = match &item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{n}: ::serde::__private::field(__c, {n:?})?,", n = f.name))
                .collect();
            let body = format!(
                "match __c {{\n\
                 ::serde::Content::Map(_) => ::std::result::Result::Ok({name} {{ {} }}),\n\
                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"expected map for `{name}`, found {{:?}}\", other))),\n\
                 }}",
                inits.join(" ")
            );
            (name, body)
        }
        Item::TupleStruct { name, arity: 1 } => {
            let body = format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(__c)?))"
            );
            (name, body)
        }
        Item::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::__private::element(__items, {i})?,"))
                .collect();
            let body = format!(
                "match __c {{\n\
                 ::serde::Content::Seq(__items) => \
                 ::std::result::Result::Ok({name}({})),\n\
                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"expected sequence for `{name}`, found {{:?}}\", other))),\n\
                 }}",
                elems.join(" ")
            );
            (name, body)
        }
        Item::UnitStruct { name } => {
            let body = format!("::std::result::Result::Ok({name})");
            (name, body)
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| !v.newtype)
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),", v = v.name))
                .collect();
            let newtype_arms: Vec<String> = variants
                .iter()
                .filter(|v| v.newtype)
                .map(|v| {
                    format!(
                        "if let ::std::option::Option::Some(inner) = __c.get({v:?}) {{\n\
                         return ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_content(inner)?));\n\
                         }}",
                        v = v.name
                    )
                })
                .collect();
            let body = format!(
                "{{\n\
                 if let ::serde::Content::Str(__s) = __c {{\n\
                 return match __s.as_str() {{\n\
                 {units}\n\
                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"unknown variant `{{}}` of `{name}`\", other))),\n\
                 }};\n\
                 }}\n\
                 {newtypes}\n\
                 ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"cannot deserialize `{name}` from {{:?}}\", __c)))\n\
                 }}",
                units = unit_arms.join("\n"),
                newtypes = newtype_arms.join("\n"),
            );
            (name, body)
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(__c: &::serde::Content) -> \
         ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
