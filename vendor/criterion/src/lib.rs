//! Offline vendored subset of `criterion`.
//!
//! A minimal wall-clock micro-benchmark harness exposing the API surface the
//! workspace's `benches/` targets use: [`Criterion::benchmark_group`] /
//! [`Criterion::bench_function`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`] / [`BenchmarkGroup::finish`],
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! No statistics, plots, or HTML reports: each benchmark is warmed up
//! briefly, timed for a bounded wall-clock budget, and its mean iteration
//! time printed as `<name> ... time: <mean> (<iters> iters)`.

// Vendored stand-in for the external crate: keep clippy quiet here so
// `-D warnings` stays meaningful for first-party code.
#![allow(clippy::all)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    warmup: Duration,
    budget: Duration,
    /// (total measured time, iterations) of the last `iter` call.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    fn new(warmup: Duration, budget: Duration) -> Self {
        Bencher { warmup, budget, result: None }
    }

    /// Time `routine`, first warming up, then looping until the measurement
    /// budget is exhausted.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: find how many iterations fit in the warmup
        // window so the measurement loop can check the clock infrequently.
        let mut batch: u64 = 1;
        let warm_start = Instant::now();
        loop {
            for _ in 0..batch {
                black_box(routine());
            }
            if warm_start.elapsed() >= self.warmup {
                break;
            }
            batch = batch.saturating_mul(2).min(1 << 20);
        }

        let mut iters: u64 = 0;
        let mut elapsed = Duration::ZERO;
        let start = Instant::now();
        while elapsed < self.budget {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            elapsed += t0.elapsed();
            iters += batch;
            if start.elapsed() > self.budget * 4 {
                break; // safety valve for very slow routines
            }
        }
        self.result = Some((elapsed, iters.max(1)));
    }

    /// Like `iter`, but timing only what `routine` returns from an explicit
    /// timed section is not supported — provided for API completeness.
    pub fn iter_with_large_drop<O, R: FnMut() -> O>(&mut self, routine: R) {
        self.iter(routine);
    }
}

fn format_time(t: f64) -> String {
    if t < 1e-6 {
        format!("{:8.2} ns", t * 1e9)
    } else if t < 1e-3 {
        format!("{:8.2} µs", t * 1e6)
    } else if t < 1.0 {
        format!("{:8.2} ms", t * 1e3)
    } else {
        format!("{t:8.2} s ")
    }
}

fn run_one(full_name: &str, warmup: Duration, budget: Duration, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher::new(warmup, budget);
    f(&mut b);
    match b.result {
        Some((elapsed, iters)) => {
            let mean = elapsed.as_secs_f64() / iters as f64;
            println!("{full_name:<48} time: {} ({iters} iters)", format_time(mean));
        }
        None => println!("{full_name:<48} (no measurement: Bencher::iter never called)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.criterion.warmup, self.criterion.budget, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.criterion.warmup, self.criterion.budget, |b| f(b, input));
        self
    }

    /// Upstream criterion requires an explicit `finish()`; here it only
    /// prints a separator.
    pub fn finish(self) {
        println!();
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    warmup: Duration,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Short budgets: these benches run in CI where statistical rigor
        // matters less than wall-clock cost. Override with
        // STAR_BENCH_BUDGET_MS if finer numbers are wanted locally.
        let ms = std::env::var("STAR_BENCH_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(60);
        Criterion { warmup: Duration::from_millis(ms / 4 + 1), budget: Duration::from_millis(ms) }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup { criterion: self, name }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = id.into().to_string();
        run_one(&full, self.warmup, self.budget, f);
        self
    }
}

/// Bundle benchmark functions under a single group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `fn main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion { warmup: Duration::from_millis(1), budget: Duration::from_millis(2) }
    }

    #[test]
    fn bench_function_measures() {
        let mut c = quick();
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.bench_function("f", |b| b.iter(|| black_box(3u32) * 7));
        let input = vec![1u64, 2, 3];
        group.bench_with_input(BenchmarkId::from_parameter(3), &input, |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(128).to_string(), "128");
    }
}
