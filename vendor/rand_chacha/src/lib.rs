//! Offline vendored `rand_chacha` subset: a real ChaCha8 keystream
//! generator behind the vendored `rand` traits.
//!
//! Streams are deterministic per seed (everything the STAR codebase
//! relies on) but are not guaranteed bit-identical to upstream
//! `rand_chacha`; see the vendored `rand` crate's docs for why these
//! stubs exist.

// Vendored stand-in for the external crate: keep clippy quiet here so
// `-D warnings` stays meaningful for first-party code.
#![allow(clippy::all)]
#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// Number of 32-bit words in a ChaCha state/block.
const STATE_WORDS: usize = 16;

/// A ChaCha stream cipher core with a configurable round count, used as a
/// deterministic RNG.
#[derive(Debug, Clone)]
struct ChaChaCore<const ROUNDS: usize> {
    /// Key + constant + counter + nonce layout per RFC 8439.
    state: [u32; STATE_WORDS],
    /// Current output block.
    buffer: [u32; STATE_WORDS],
    /// Next unread word index in `buffer` (STATE_WORDS = exhausted).
    index: usize,
}

impl<const ROUNDS: usize> ChaChaCore<ROUNDS> {
    fn new(seed: [u8; 32]) -> Self {
        let mut state = [0u32; STATE_WORDS];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // Words 12..13 form the 64-bit block counter; 14..15 the nonce (0).
        ChaChaCore { state, buffer: [0; STATE_WORDS], index: STATE_WORDS }
    }

    #[inline]
    fn quarter_round(s: &mut [u32; STATE_WORDS], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..(ROUNDS / 2) {
            // Column rounds.
            Self::quarter_round(&mut working, 0, 4, 8, 12);
            Self::quarter_round(&mut working, 1, 5, 9, 13);
            Self::quarter_round(&mut working, 2, 6, 10, 14);
            Self::quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            Self::quarter_round(&mut working, 0, 5, 10, 15);
            Self::quarter_round(&mut working, 1, 6, 11, 12);
            Self::quarter_round(&mut working, 2, 7, 8, 13);
            Self::quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.buffer.iter_mut().zip(working.iter().zip(self.state.iter())) {
            *out = w.wrapping_add(s);
        }
        // 64-bit counter increment.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= STATE_WORDS {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }
}

macro_rules! chacha_rng {
    ($(#[$doc:meta])* $name:ident, $rounds:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            core: ChaChaCore<$rounds>,
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.core.next_word()
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.core.next_word() as u64;
                let hi = self.core.next_word() as u64;
                (hi << 32) | lo
            }

            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(4) {
                    let bytes = self.core.next_word().to_le_bytes();
                    chunk.copy_from_slice(&bytes[..chunk.len()]);
                }
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                $name { core: ChaChaCore::new(seed) }
            }
        }
    };
}

chacha_rng!(
    /// ChaCha with 8 rounds — the workhorse RNG of the STAR codebase.
    ChaCha8Rng,
    8
);
chacha_rng!(
    /// ChaCha with 12 rounds.
    ChaCha12Rng,
    12
);
chacha_rng!(
    /// ChaCha with 20 rounds.
    ChaCha20Rng,
    20
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(0x57A5);
        let mut b = ChaCha8Rng::seed_from_u64(0x57A5);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(0x57A6);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn chacha20_rfc8439_block_one() {
        // RFC 8439 §2.3.2 test vector: key 00..1f, nonce 0, counter 0 is not
        // the RFC setup (it uses counter 1 and a nonce); instead check the
        // all-zero-key keystream's first word against the well-known value
        // for ChaCha20 with zero key/nonce/counter: 0xade0b876.
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        assert_eq!(rng.next_u32(), 0xade0_b876);
    }

    #[test]
    fn uniformity_smoke() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
