//! `star-cli` — a small command-line front end to the STAR reproduction.
//!
//! ```sh
//! cargo run --bin star_cli -- help
//! cargo run --bin star_cli -- softmax q5.3 1.0 2.0 3.0
//! cargo run --bin star_cli -- geometry q5.3
//! cargo run --bin star_cli -- engines
//! cargo run --bin star_cli -- fig3
//! ```

use star::arch::{Accelerator, GpuModel, MatMulEngine, MatMulEngineConfig, RramAccelerator};
use star::attention::{AttentionConfig, ExactSoftmax, RowSoftmax};
use star::core::{
    pipeline_chrome_trace, CmosBaselineSoftmax, PipelineMode, RowDurations, Softermax,
    SoftmaxEngine, StarSoftmax, StarSoftmaxConfig, UtilizationReport,
};
use star::fixed::QFormat;
use std::process::ExitCode;

const USAGE: &str = "star-cli — STAR (DATE 2023) RRAM softmax engine reproduction

USAGE:
    star-cli <command> [args]

COMMANDS:
    softmax <format> <scores...>   run the engine on a score row vs exact
                                   (format: q<int>.<frac>, e.g. q5.2)
    geometry <format>              print the engine's crossbar shapes
    engines                        Table-I style area/power of all designs
    fig3 [seq]                     computing-efficiency comparison
    trace <format> [seq]           emit the vector-grained attention row
                                   pipeline as Chrome trace-event JSON on
                                   stdout (open in https://ui.perfetto.dev);
                                   utilization summary goes to stderr
    metrics <format> [seq]         run a representative softmax workload and
                                   print the telemetry counter/gauge table
    serve [rate] [fleet] [batch] [window_us] [--trace[=PATH]] [--shards=N]
          [--flight[=PATH]]
                                   simulate a fleet of STAR instances serving
                                   Poisson BERT-base/128 traffic against a
                                   2 ms SLO and print the goodput/latency
                                   report (defaults: 16000 rps, 2 instances,
                                   batch 8, 50 us window). With --trace,
                                   also write per-request span trees plus
                                   queue/utilization counter tracks as
                                   Perfetto-loadable JSON (default path
                                   serve_trace.json) and print the SLO
                                   burn-rate analysis. --shards=N runs the
                                   event loop on N event-queue shards
                                   (1..=64; output is bitwise identical at
                                   any shard count — engine choice only).
                                   --flight arms the always-on incident
                                   flight recorder (bounded event ring +
                                   deterministic triggers: SLO burn,
                                   expiry burst, queue depth); when a
                                   trigger fires the captured window and
                                   a root-cause report are written as
                                   Perfetto-loadable JSON (default path
                                   flight_incident.json)
    trace-analyze <file> [k]       re-analyze a `serve --trace` file:
                                   availability, burn-rate windows,
                                   time-to-first-violation, per-class
                                   goodput/p99, and the k slowest requests
                                   with their span decomposition (default 5).
                                   Incident dumps from `serve --flight` and
                                   blame dumps from `blame --trace` are
                                   recognized and re-analyzed too
    incident-analyze <file>        re-analyze a `serve --flight` incident
                                   dump: triggers, captured window, latency
                                   waterfall, arrival-rate delta, per-class
                                   and per-instance saturation, and the
                                   slowest exemplars
    health [rate] [fleet] [batch] [window_us] [--level]
                                   run the serve simulation with the device
                                   health monitor: per-instance wear ledgers,
                                   temperature/drift/accuracy-margin gauges,
                                   wear skew, alarms, and the sustained-load
                                   projection (time to first degradation,
                                   lifetime inferences). --level enables
                                   round-robin wear-leveling placement
    profile [rate] [fleet] [batch] [window_us] [--trace[=PATH]] [--shards=N]
                                   run the serve simulation with the
                                   simulator self-profiler: deterministic
                                   work counters (events, heap traffic,
                                   dispatch scans — machine-independent)
                                   plus the wall-clock top-phases table.
                                   With --trace, also write a Chrome
                                   meta-trace of the simulator's own time
                                   (default path profile_trace.json).
                                   --shards=N as in serve — the work
                                   counters prove the shard count changes
                                   nothing
    control [rate] [fleet] [batch] [window_us] [--policy=P] [--placement=P]
            [--autoscale=MIN:MAX|off] [--shards=N]
                                   run the fleet control plane on the mixed
                                   70/30 premium/economy workload under a
                                   bursty MMPP ramp (low phase = rate,
                                   high phase = 5x): per-class fairness
                                   table, the autoscaler's scale-event
                                   timeline, and the instance-seconds cost
                                   figure. --policy is fifo, wfq (premium
                                   weighted 2:1) or edf (premium 2 ms /
                                   economy 1 ms offsets); --placement is
                                   first-idle, least-loaded, fastest or
                                   energy-greedy; --autoscale bounds the
                                   fleet (default 1:4, `off` pins it).
                                   Defaults: 8000 rps low phase, fleet 1,
                                   batch 8, 50 us window, wfq/least-loaded
    blame [rate] [fleet] [batch] [window_us] [--trace[=PATH]] [--shards=N]
                                   run the serve simulation with the
                                   critical-path blame recorder: every
                                   request's latency split into causally
                                   attributed waits (admission queueing,
                                   batch-window hold, instance-busy, and
                                   the five invocation phases) that sum
                                   back to the latency bitwise, plus
                                   per-class/per-instance blame tables,
                                   mean-vs-p99-tail comparison, and the
                                   top blocking chains. With --trace,
                                   also write the tables plus a Perfetto
                                   view as JSON (default path
                                   blame_trace.json). Blame is pure
                                   observation: the report is bitwise
                                   identical to an unblamed run
    whatif [rate] [fleet] [batch] [window_us] [--shards=N]
                                   deterministic what-if profiling: re-run
                                   the same seeded workload under each
                                   standard intervention (halve each
                                   service phase, zero the batch window,
                                   +1 instance, least-loaded placement)
                                   and print the ranked Δp99/Δgoodput/
                                   Δenergy table — an exact, replayable
                                   form of causal profiling
    help                           this message

Paper formats: CNEWS = q5.2 (8 bits), MRPC = q5.3 (9 bits), CoLA = q4.2 (7 bits).";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let result = match cmd {
        "softmax" => cmd_softmax(&args[1..]),
        "geometry" => cmd_geometry(&args[1..]),
        "engines" => cmd_engines(),
        "fig3" => cmd_fig3(&args[1..]),
        "trace" => cmd_trace(&args[1..]),
        "metrics" => cmd_metrics(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "trace-analyze" => cmd_trace_analyze(&args[1..]),
        "incident-analyze" => cmd_incident_analyze(&args[1..]),
        "health" => cmd_health(&args[1..]),
        "profile" => cmd_profile(&args[1..]),
        "control" => cmd_control(&args[1..]),
        "blame" => cmd_blame(&args[1..]),
        "whatif" => cmd_whatif(&args[1..]),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Parses `q<int>.<frac>`.
fn parse_format(text: &str) -> Result<QFormat, String> {
    let body =
        text.strip_prefix('q').ok_or_else(|| format!("format `{text}` must look like q5.2"))?;
    let (int_str, frac_str) =
        body.split_once('.').ok_or_else(|| format!("format `{text}` must look like q5.2"))?;
    let int: u8 = int_str.parse().map_err(|_| format!("bad integer bits in `{text}`"))?;
    let frac: u8 = frac_str.parse().map_err(|_| format!("bad fraction bits in `{text}`"))?;
    QFormat::new(int, frac).map_err(|e| e.to_string())
}

fn cmd_softmax(args: &[String]) -> Result<(), String> {
    let format = parse_format(args.first().ok_or("softmax needs a format, e.g. q5.2")?)?;
    if args.len() < 2 {
        return Err("softmax needs at least one score".into());
    }
    let scores: Vec<f64> = args[1..]
        .iter()
        .map(|a| a.parse::<f64>().map_err(|_| format!("`{a}` is not a number")))
        .collect::<Result<_, _>>()?;

    let mut engine = StarSoftmax::new(StarSoftmaxConfig::new(format)).map_err(|e| e.to_string())?;
    let star = engine.softmax_row(&scores);
    let exact = ExactSoftmax::new().softmax_row(&scores);
    println!("STAR softmax engine at {format} ({} bits)", format.total_bits());
    println!("{:>10} {:>10} {:>10} {:>10}", "score", "star", "exact", "|err|");
    for ((s, p), q) in scores.iter().zip(&star).zip(&exact) {
        println!("{s:>10.4} {p:>10.6} {q:>10.6} {:>10.2e}", (p - q).abs());
    }
    println!("engine sum: {:.6}", star.iter().sum::<f64>());
    Ok(())
}

fn cmd_geometry(args: &[String]) -> Result<(), String> {
    let format = parse_format(args.first().ok_or("geometry needs a format, e.g. q5.3")?)?;
    let engine = StarSoftmax::new(StarSoftmaxConfig::new(format)).map_err(|e| e.to_string())?;
    let g = engine.geometry();
    println!("engine geometry at {format} ({} bits):", format.total_bits());
    println!("  cam/sub crossbar : {}", g.cam_sub);
    println!("  exp cam crossbar : {}", g.exp_cam);
    println!("  exp lut crossbar : {}", g.lut);
    println!("  sum vmm crossbar : {}", g.vmm);
    let sheet = engine.cost_sheet();
    println!(
        "  engine budget    : {:.1} um^2, {:.3} mW",
        sheet.total_area().value(),
        sheet.total_power().value()
    );
    Ok(())
}

fn cmd_engines() -> Result<(), String> {
    let format = QFormat::CNEWS;
    let baseline = CmosBaselineSoftmax::new(8);
    let softermax = Softermax::new(format, 8);
    let star = StarSoftmax::new(StarSoftmaxConfig::new(format)).map_err(|e| e.to_string())?;
    let base_sheet = baseline.cost_sheet();
    println!("softmax designs at the Table I operating point ({format}, seq 128):");
    println!(
        "{:<28} {:>12} {:>10} {:>8} {:>8}",
        "design", "area[um^2]", "power[mW]", "area x", "power x"
    );
    for sheet in [&base_sheet, &softermax.cost_sheet(), &star.cost_sheet()] {
        println!(
            "{:<28} {:>12.1} {:>10.3} {:>8.3} {:>8.3}",
            sheet.name(),
            sheet.total_area().value(),
            sheet.total_power().value(),
            sheet.area_ratio_to(&base_sheet),
            sheet.power_ratio_to(&base_sheet)
        );
    }
    println!("\npaper: softermax 0.33x/0.12x; ours (8-bit) 0.06x/0.05x");
    Ok(())
}

fn cmd_fig3(args: &[String]) -> Result<(), String> {
    let seq: usize = match args.first() {
        Some(a) => a.parse().map_err(|_| format!("`{a}` is not a sequence length"))?,
        None => 128,
    };
    if seq == 0 {
        return Err("sequence length must be positive".into());
    }
    let cfg = AttentionConfig::bert_base(seq);
    println!("computing efficiency, BERT-base attention layer, seq {seq}:");
    println!("{:<18} {:>12} {:>12}", "design", "latency[us]", "GOPs/s/W");
    for r in [
        GpuModel::titan_rtx().evaluate(&cfg),
        RramAccelerator::pipelayer().evaluate(&cfg),
        RramAccelerator::retransformer().evaluate(&cfg),
        RramAccelerator::star().evaluate(&cfg),
    ] {
        println!("{:<18} {:>12.1} {:>12.2}", r.name, r.latency.as_us(), r.efficiency_gops_per_watt);
    }
    Ok(())
}

/// Parses an optional trailing sequence-length argument (default 128).
fn parse_seq(arg: Option<&String>) -> Result<usize, String> {
    let seq = match arg {
        Some(a) => a.parse().map_err(|_| format!("`{a}` is not a sequence length"))?,
        None => 128,
    };
    if seq == 0 {
        return Err("sequence length must be positive".into());
    }
    Ok(seq)
}

/// Per-row stage durations for a BERT-base attention layer at the paper
/// operating point: the ReTransformer-style MatMul engine for QKᵀ/PV and
/// the STAR softmax engine at `format` for the middle stage.
fn paper_row_durations(format: QFormat, seq: usize) -> Result<RowDurations, String> {
    let engine = StarSoftmax::new(StarSoftmaxConfig::new(format)).map_err(|e| e.to_string())?;
    let matmul = MatMulEngine::new(MatMulEngineConfig::paper());
    let dh = AttentionConfig::bert_base(seq).d_head();
    let qk = matmul.row_cost(dh, seq).latency.value();
    let av = matmul.row_cost(seq, dh).latency.value();
    let sm = engine.row_cost(seq).latency.value();
    Ok(RowDurations::uniform(seq, qk, sm, av))
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let format = parse_format(args.first().ok_or("trace needs a format, e.g. q5.3")?)?;
    let seq = parse_seq(args.get(1))?;
    let durations = paper_row_durations(format, seq)?;
    let trace = pipeline_chrome_trace(&durations, PipelineMode::VectorGrained, 1);
    // Pure JSON on stdout so the output pipes straight into a .json file.
    println!("{}", trace.to_json_string());
    for mode in PipelineMode::ALL {
        let report = UtilizationReport::from_durations(&durations, mode, 1);
        eprint!("{}", report.to_table());
    }
    Ok(())
}

fn cmd_metrics(args: &[String]) -> Result<(), String> {
    let format = parse_format(args.first().ok_or("metrics needs a format, e.g. q5.3")?)?;
    let seq = parse_seq(args.get(1))?;
    // Run the workload under a scoped registry so the table reflects
    // exactly this invocation, not whatever else the process did.
    let (result, snap) = star::telemetry::with_scoped(|| -> Result<(), String> {
        let mut engine =
            StarSoftmax::new(StarSoftmaxConfig::new(format)).map_err(|e| e.to_string())?;
        let mut baseline = CmosBaselineSoftmax::new(8);
        let mut softermax = Softermax::new(format, 8);
        // A deterministic, dynamic-range-covering score row.
        let scores: Vec<f64> =
            (0..seq).map(|i| ((i * 37 % 97) as f64 / 97.0 - 0.5) * 6.0).collect();
        let _ = engine.softmax_row(&scores);
        let _ = baseline.softmax_row(&scores);
        let _ = softermax.softmax_row(&scores);
        let durations = paper_row_durations(format, seq)?;
        for mode in PipelineMode::ALL {
            let _ = UtilizationReport::from_durations(&durations, mode, 1);
        }
        Ok(())
    });
    result?;
    println!("telemetry for one {format} softmax row (seq {seq}) + pipeline models:");
    print!("{}", snap.render_pretty());
    Ok(())
}

/// Parses the value of a `--shards=N` flag: 1..=`MAX_SHARDS`.
fn parse_shards(text: &str) -> Result<usize, String> {
    let n: usize = text.parse().map_err(|_| format!("`{text}` is not a shard count"))?;
    if !(1..=star::serve::MAX_SHARDS).contains(&n) {
        return Err(format!("shard count must be in 1..={}", star::serve::MAX_SHARDS));
    }
    Ok(n)
}

/// Parses a positional argument with a default, rejecting zero.
fn parse_positive<T: std::str::FromStr + PartialOrd + Default>(
    arg: Option<&String>,
    default: T,
    what: &str,
) -> Result<T, String> {
    let v = match arg {
        Some(a) => a.parse().map_err(|_| format!("`{a}` is not a valid {what}"))?,
        None => default,
    };
    if v <= T::default() {
        return Err(format!("{what} must be positive"));
    }
    Ok(v)
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use star::serve::{
        shards_from_env, simulate_full, ArrivalProcess, BatchPolicy, ControlConfig, FlightConfig,
        ModelKind, RequestClass, ServeConfig, ServiceModel, ServiceModelConfig, SloAnalysis,
        SloPolicy, WorkloadMix,
    };
    // Split flags from positionals so --trace/--flight/--shards compose
    // with every positional combination.
    let mut trace_path: Option<std::path::PathBuf> = None;
    let mut flight_path: Option<std::path::PathBuf> = None;
    let mut shards: Option<usize> = None;
    let mut positional: Vec<&String> = Vec::new();
    for a in args {
        if a == "--trace" {
            trace_path = Some(std::path::PathBuf::from("serve_trace.json"));
        } else if let Some(p) = a.strip_prefix("--trace=") {
            if p.is_empty() {
                return Err("--trace= needs a path".into());
            }
            trace_path = Some(p.into());
        } else if a == "--flight" {
            flight_path = Some(std::path::PathBuf::from("flight_incident.json"));
        } else if let Some(p) = a.strip_prefix("--flight=") {
            if p.is_empty() {
                return Err("--flight= needs a path".into());
            }
            flight_path = Some(p.into());
        } else if let Some(n) = a.strip_prefix("--shards=") {
            shards = Some(parse_shards(n)?);
        } else if a.starts_with("--") {
            return Err(format!("unknown flag `{a}`"));
        } else {
            positional.push(a);
        }
    }
    let rate: f64 = parse_positive(positional.first().copied(), 16_000.0, "arrival rate (rps)")?;
    if !rate.is_finite() {
        return Err("arrival rate must be finite".into());
    }
    let fleet: usize = parse_positive(positional.get(1).copied(), 2, "fleet size")?;
    let batch: usize = parse_positive(positional.get(2).copied(), 8, "batch size")?;
    let window_us: f64 = match positional.get(3) {
        Some(a) => a.parse().map_err(|_| format!("`{a}` is not a window in us"))?,
        None => 50.0,
    };
    if !(window_us.is_finite() && window_us >= 0.0) {
        return Err("window must be finite and non-negative".into());
    }

    let class = RequestClass::new(ModelKind::BertBase, 128);
    let cfg = ServeConfig {
        fleet,
        policy: BatchPolicy::new(batch, window_us * 1e3),
        arrival: ArrivalProcess::poisson(rate),
        mix: WorkloadMix::single(class),
        horizon_ns: 1e8,
        seed: 2023,
        max_queue: 256,
        deadline_ns: 2e6,
        service: ServiceModelConfig::default(),
        control: ControlConfig::default(),
    };
    let service = ServiceModel::new(cfg.service.clone(), &[class]);
    // --shards picks the event-queue layout; the report is bitwise
    // identical at any count, so this is an engine choice, not a knob.
    let shards = shards.unwrap_or_else(shards_from_env);
    let flight_cfg = flight_path.is_some().then(FlightConfig::default);
    let outcome =
        simulate_full(&cfg, shards, trace_path.is_some(), None, false, flight_cfg.as_ref(), false);
    let (r, trace, flight) = (outcome.report, outcome.trace, outcome.flight);

    println!("serving {class} on {fleet} STAR instance(s), policy {}:", cfg.policy);
    println!(
        "  zero-load floor {:.1} us/request, fleet capacity {:.0} rps at batch 1, {:.0} at batch {batch}",
        service.unit_latency_ns(class) / 1e3,
        service.peak_rps(class, 1) * fleet as f64,
        service.peak_rps(class, batch) * fleet as f64,
    );
    println!(
        "  arrivals {}   completed {}   good {}   late {}   rejected {}   expired {}",
        r.arrivals, r.completed, r.good, r.late, r.rejected, r.expired
    );
    println!(
        "  offered {:.0} rps   throughput {:.0} rps   goodput {:.0} rps (2 ms SLO)",
        r.offered_rps, r.throughput_rps, r.goodput_rps
    );
    println!(
        "  latency ms  p50 {:.3}   p95 {:.3}   p99 {:.3}   max {:.3}",
        r.latency.p50_ms, r.latency.p95_ms, r.latency.p99_ms, r.latency.max_ms
    );
    println!(
        "  queue   ms  p50 {:.3}   p95 {:.3}   p99 {:.3}",
        r.queue_delay.p50_ms, r.queue_delay.p95_ms, r.queue_delay.p99_ms
    );
    println!(
        "  batches {}   mean size {:.2}   utilization {:.1} %   energy/request {:.1} nJ",
        r.batches,
        r.mean_batch_size,
        r.mean_utilization * 100.0,
        r.energy_per_request_nj
    );
    if let (Some(path), Some(trace)) = (trace_path, trace) {
        let json = serde_json::to_string(&trace.to_object_json()).map_err(|e| e.to_string())?;
        std::fs::write(&path, &json).map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!(
            "  trace: {} root spans, {} batch spans, {} samples -> {} (open in https://ui.perfetto.dev)",
            trace.requests.len(),
            trace.batches.len(),
            trace.samples.len(),
            path.display()
        );
        print_slo_analysis(&SloAnalysis::from_trace(&trace, SloPolicy::default(), 5));
    }
    if let (Some(path), Some(flight)) = (flight_path, flight) {
        println!(
            "  flight: {} event rows seen ({} retained / {} evicted), {} terminals, {} trigger(s)",
            flight.events_seen,
            flight.events_retained,
            flight.events_evicted,
            flight.terminals_seen,
            flight.triggers_fired
        );
        match flight.incidents.first() {
            None => println!("  flight: no trigger fired; nothing dumped"),
            Some(dump) => {
                let json =
                    serde_json::to_string(&dump.to_object_json()).map_err(|e| e.to_string())?;
                std::fs::write(&path, &json)
                    .map_err(|e| format!("writing {}: {e}", path.display()))?;
                println!(
                    "  flight: incident dump -> {} (open in https://ui.perfetto.dev, or `star-cli incident-analyze`)",
                    path.display()
                );
                print_incident(dump);
            }
        }
    }
    Ok(())
}

fn cmd_health(args: &[String]) -> Result<(), String> {
    use star::serve::{
        simulate_monitored, ArrivalProcess, BatchPolicy, ControlConfig, HealthConfig, HealthModel,
        ModelKind, RequestClass, ServeConfig, ServiceModelConfig, WearRates, WorkloadMix,
    };
    let mut wear_leveling = false;
    let mut positional: Vec<&String> = Vec::new();
    for a in args {
        if a == "--level" {
            wear_leveling = true;
        } else if a.starts_with("--") {
            return Err(format!("unknown flag `{a}`"));
        } else {
            positional.push(a);
        }
    }
    let rate: f64 = parse_positive(positional.first().copied(), 16_000.0, "arrival rate (rps)")?;
    if !rate.is_finite() {
        return Err("arrival rate must be finite".into());
    }
    let fleet: usize = parse_positive(positional.get(1).copied(), 2, "fleet size")?;
    let batch: usize = parse_positive(positional.get(2).copied(), 8, "batch size")?;
    let window_us: f64 = match positional.get(3) {
        Some(a) => a.parse().map_err(|_| format!("`{a}` is not a window in us"))?,
        None => 50.0,
    };
    if !(window_us.is_finite() && window_us >= 0.0) {
        return Err("window must be finite and non-negative".into());
    }

    let class = RequestClass::new(ModelKind::BertBase, 128);
    let cfg = ServeConfig {
        fleet,
        policy: BatchPolicy::new(batch, window_us * 1e3),
        arrival: ArrivalProcess::poisson(rate),
        mix: WorkloadMix::single(class),
        horizon_ns: 1e8,
        seed: 2023,
        max_queue: 256,
        deadline_ns: 2e6,
        service: ServiceModelConfig::default(),
        control: ControlConfig::default(),
    };
    let health_cfg = HealthConfig { wear_leveling, ..HealthConfig::default() };
    let outcome = simulate_monitored(&cfg, &health_cfg);
    let r = &outcome.report;
    let health = outcome.health.as_ref().expect("monitored run reports fleet health");

    println!(
        "fleet health: {class} at {rate:.0} rps on {fleet} instance(s), policy {}, \
         wear leveling {}:",
        cfg.policy,
        if wear_leveling { "on" } else { "off" }
    );
    println!(
        "  completed {}/{}   goodput {:.0} rps   p99 {:.3} ms   window {:.1} ms",
        r.completed,
        r.arrivals,
        r.goodput_rps,
        r.latency.p99_ms,
        r.makespan_ns / 1e6
    );
    println!(
        "  {:>4} {:>12} {:>14} {:>14} {:>9} {:>9} {:>12} {:>9}",
        "inst", "rows", "reads", "eff writes", "temp K", "peak K", "stuck frac", "margin"
    );
    for i in &health.instances {
        println!(
            "  {:>4} {:>12} {:>14} {:>14.4} {:>9.2} {:>9.2} {:>12.3e} {:>9.4}",
            i.instance,
            i.ledger.rows,
            i.ledger.reads(),
            i.ledger.effective_writes(health_cfg.read_disturb_per_read),
            i.health.temperature_kelvin,
            i.peak_temperature_kelvin,
            i.health.stuck_fraction,
            i.health.accuracy_margin,
        );
    }
    println!("  wear skew {:.4} (max-min over mean of per-instance rows)", health.wear_skew);
    if health.alarms.is_empty() {
        println!("  alarms: none inside the simulated window");
    } else {
        for a in &health.alarms {
            println!(
                "  alarm: instance {} {} at {:.3} ms (value {:.4}, threshold {:.4})",
                a.instance,
                a.kind.as_str(),
                a.t_ns / 1e6,
                a.value,
                a.threshold
            );
        }
    }

    // Sustained-load projection from the hottest instance's wear rates.
    let hottest =
        health.instances.iter().max_by_key(|i| i.ledger.rows).expect("fleet is non-empty");
    let rates = WearRates::from_ledger(&hottest.ledger, r.makespan_ns);
    let model = HealthModel::new(health_cfg.clone(), cfg.service.qformat());
    println!(
        "  sustained (instance {}): {:.3e} reads/s, {:.0} inferences/s, {:.0} mW \
         -> steady {:.2} K",
        hottest.instance,
        rates.reads_per_s,
        rates.inferences_per_s,
        rates.power_mw,
        model.steady_temperature(rates.power_mw)
    );
    match model.time_to_first_degradation_s(&rates) {
        Some(t) => println!(
            "  first degradation after {:.1} days  ({:.3e} inferences served)",
            t / 8.64e4,
            t * rates.inferences_per_s
        ),
        None => println!("  no degradation threshold is ever crossed at this load"),
    }
    Ok(())
}

fn cmd_profile(args: &[String]) -> Result<(), String> {
    use star::serve::{
        shards_from_env, simulate_sharded_with, ArrivalProcess, BatchPolicy, ControlConfig,
        ModelKind, RequestClass, ServeConfig, ServiceModelConfig, WorkloadMix,
    };
    let mut trace_path: Option<std::path::PathBuf> = None;
    let mut shards: Option<usize> = None;
    let mut positional: Vec<&String> = Vec::new();
    for a in args {
        if a == "--trace" {
            trace_path = Some(std::path::PathBuf::from("profile_trace.json"));
        } else if let Some(p) = a.strip_prefix("--trace=") {
            if p.is_empty() {
                return Err("--trace= needs a path".into());
            }
            trace_path = Some(p.into());
        } else if let Some(n) = a.strip_prefix("--shards=") {
            shards = Some(parse_shards(n)?);
        } else if a.starts_with("--") {
            return Err(format!("unknown flag `{a}`"));
        } else {
            positional.push(a);
        }
    }
    let rate: f64 = parse_positive(positional.first().copied(), 16_000.0, "arrival rate (rps)")?;
    if !rate.is_finite() {
        return Err("arrival rate must be finite".into());
    }
    let fleet: usize = parse_positive(positional.get(1).copied(), 2, "fleet size")?;
    let batch: usize = parse_positive(positional.get(2).copied(), 8, "batch size")?;
    let window_us: f64 = match positional.get(3) {
        Some(a) => a.parse().map_err(|_| format!("`{a}` is not a window in us"))?,
        None => 50.0,
    };
    if !(window_us.is_finite() && window_us >= 0.0) {
        return Err("window must be finite and non-negative".into());
    }

    let class = RequestClass::new(ModelKind::BertBase, 128);
    let cfg = ServeConfig {
        fleet,
        policy: BatchPolicy::new(batch, window_us * 1e3),
        arrival: ArrivalProcess::poisson(rate),
        mix: WorkloadMix::single(class),
        horizon_ns: 1e8,
        seed: 2023,
        max_queue: 256,
        deadline_ns: 2e6,
        service: ServiceModelConfig::default(),
        control: ControlConfig::default(),
    };
    let shards = shards.unwrap_or_else(shards_from_env);
    let outcome = simulate_sharded_with(&cfg, shards, false, None, true);
    let r = &outcome.report;
    let profile = outcome.profile.as_ref().expect("profiled run carries a profile");

    println!(
        "simulator self-profile: {class} at {rate:.0} rps on {fleet} instance(s), policy {}:",
        cfg.policy
    );
    println!(
        "  simulated: arrivals {}   completed {}   goodput {:.0} rps   window {:.1} ms",
        r.arrivals,
        r.completed,
        r.goodput_rps,
        r.makespan_ns / 1e6
    );
    println!("  (the report above is bitwise identical to an unprofiled run)\n");
    print!("{}", profile.render());
    if let Some(path) = trace_path {
        let json = serde_json::to_string(&profile.to_object_json()).map_err(|e| e.to_string())?;
        std::fs::write(&path, &json).map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!(
            "  meta-trace: {} phases -> {} (open in https://ui.perfetto.dev; \
             work counters ride in the `{}` sidecar)",
            profile.wall.entries().filter(|(_, s)| s.calls > 0).count(),
            path.display(),
            star::serve::PROFILE_SIDECAR_KEY
        );
    }
    Ok(())
}

fn cmd_control(args: &[String]) -> Result<(), String> {
    use star::serve::{
        shards_from_env, simulate_sharded_with, ArrivalProcess, AutoscaleConfig, BatchPolicy,
        ControlConfig, DequeuePolicy, ModelKind, PlacementPolicy, RequestClass, ScaleDirection,
        ServeConfig, ServiceModelConfig, WorkloadMix,
    };
    let premium = RequestClass::new(ModelKind::BertBase, 128);
    let economy = RequestClass::new(ModelKind::BertBase, 64);

    let mut policy_flag: Option<&str> = None;
    let mut placement_flag: Option<&str> = None;
    let mut autoscale_flag: Option<&str> = None;
    let mut shards: Option<usize> = None;
    let mut positional: Vec<&String> = Vec::new();
    for a in args {
        if let Some(p) = a.strip_prefix("--policy=") {
            policy_flag = Some(p);
        } else if let Some(p) = a.strip_prefix("--placement=") {
            placement_flag = Some(p);
        } else if let Some(p) = a.strip_prefix("--autoscale=") {
            autoscale_flag = Some(p);
        } else if let Some(n) = a.strip_prefix("--shards=") {
            shards = Some(parse_shards(n)?);
        } else if a.starts_with("--") {
            return Err(format!("unknown flag `{a}`"));
        } else {
            positional.push(a);
        }
    }
    let rate: f64 = parse_positive(positional.first().copied(), 8_000.0, "arrival rate (rps)")?;
    if !rate.is_finite() {
        return Err("arrival rate must be finite".into());
    }
    let fleet: usize = parse_positive(positional.get(1).copied(), 1, "fleet size")?;
    let batch: usize = parse_positive(positional.get(2).copied(), 8, "batch size")?;
    let window_us: f64 = match positional.get(3) {
        Some(a) => a.parse().map_err(|_| format!("`{a}` is not a window in us"))?,
        None => 50.0,
    };
    if !(window_us.is_finite() && window_us >= 0.0) {
        return Err("window must be finite and non-negative".into());
    }

    let dequeue = match policy_flag.unwrap_or("wfq") {
        "fifo" => DequeuePolicy::Fifo,
        "wfq" => DequeuePolicy::weighted_fair(vec![(premium, 2.0), (economy, 1.0)]),
        "edf" => DequeuePolicy::earliest_deadline(vec![(premium, 2e6), (economy, 1e6)]),
        other => return Err(format!("`{other}` is not a dequeue policy (fifo, wfq, edf)")),
    };
    let placement = match placement_flag.unwrap_or("least-loaded") {
        "first-idle" => PlacementPolicy::FirstIdle,
        "least-loaded" => PlacementPolicy::LeastLoaded,
        "fastest" => PlacementPolicy::FastestEligible,
        "energy-greedy" => PlacementPolicy::EnergyGreedy,
        other => {
            return Err(format!(
                "`{other}` is not a placement policy \
                 (first-idle, least-loaded, fastest, energy-greedy)"
            ))
        }
    };
    let autoscale = match autoscale_flag.unwrap_or("1:4") {
        "off" => None,
        bounds => {
            let (lo, hi) = bounds
                .split_once(':')
                .ok_or_else(|| format!("`--autoscale={bounds}` must be MIN:MAX or off"))?;
            let min: usize = lo.parse().map_err(|_| format!("`{lo}` is not a fleet bound"))?;
            let max: usize = hi.parse().map_err(|_| format!("`{hi}` is not a fleet bound"))?;
            if min < 1 || min > max {
                return Err(format!("autoscale bounds {min}:{max} must satisfy 1 <= MIN <= MAX"));
            }
            // The A10 burst-tracking cadence: 0.5 ms checks and cooldown.
            Some(AutoscaleConfig {
                check_interval_ns: 5e5,
                cooldown_ns: 5e5,
                ..AutoscaleConfig::new(min, max)
            })
        }
    };

    let cfg = ServeConfig {
        fleet,
        policy: BatchPolicy::new(batch, window_us * 1e3),
        arrival: ArrivalProcess::mmpp(rate, 5.0 * rate, 1e7, 1e7),
        mix: WorkloadMix::new(vec![(premium, 0.7), (economy, 0.3)]),
        horizon_ns: 1e8,
        seed: 2023,
        max_queue: 256,
        deadline_ns: 2e6,
        service: ServiceModelConfig::default(),
        control: ControlConfig { dequeue, placement, autoscale, instance_services: Vec::new() },
    };
    let shards = shards.unwrap_or_else(shards_from_env);
    let outcome = simulate_sharded_with(&cfg, shards, false, None, false);
    let r = &outcome.report;

    println!(
        "fleet control: 70/30 {premium} / {economy} under MMPP {rate:.0}/{:.0} rps, \
         policy {}, 2 ms deadline:",
        5.0 * rate,
        cfg.policy
    );
    println!(
        "  completed {}/{}   attainment {:.4}   goodput {:.0} rps   p99 {:.3} ms   \
         window {:.1} ms",
        r.completed,
        r.arrivals,
        if r.arrivals == 0 { 1.0 } else { r.good as f64 / r.arrivals as f64 },
        r.goodput_rps,
        r.latency.p99_ms,
        r.makespan_ns / 1e6
    );
    let Some(c) = outcome.control else {
        println!(
            "  control plane at no-op defaults (fifo / first-idle / no autoscaler): \
             the run took the bitwise-identical baseline path and emits no report"
        );
        return Ok(());
    };

    println!("  dequeue {}   placement {}", c.dequeue, c.placement);
    println!(
        "  {:<20} {:>7} {:>10} {:>13} {:>8}",
        "class", "weight", "completed", "attained ms", "share"
    );
    for s in &c.shares {
        println!(
            "  {:<20} {:>7.1} {:>10} {:>13.3} {:>8.4}",
            s.class.to_string(),
            s.weight,
            s.completed,
            s.attained_ns / 1e6,
            s.share
        );
    }

    if c.scale_events.is_empty() {
        println!("  fleet static at {} instance(s): no scale events", c.final_active);
    } else {
        println!("  scale-event timeline ({} events):", c.scale_events.len());
        println!("  {:>10} {:>5} {:>7} {:>7} {:>9}", "t ms", "dir", "active", "queued", "burn hot");
        for e in &c.scale_events {
            println!(
                "  {:>10.3} {:>5} {:>7} {:>7} {:>9}",
                e.t_ns / 1e6,
                match e.direction {
                    ScaleDirection::Up => "up",
                    ScaleDirection::Down => "down",
                },
                e.active_after,
                e.queued,
                e.burn_hot
            );
        }
    }
    println!(
        "  fleet cost {:.4} instance-seconds   active min/final/peak {}/{}/{}",
        c.instance_seconds, c.min_active, c.final_active, c.peak_active
    );
    if c.converge_ns > 0.0 {
        println!("  converged to peak capacity at {:.2} ms", c.converge_ns / 1e6);
    }
    Ok(())
}

/// Builds the serve-family default config (BERT-base/128 Poisson
/// traffic against a 2 ms SLO) from the shared positional arguments.
fn serve_point_config(positional: &[&String]) -> Result<star::serve::ServeConfig, String> {
    use star::serve::{
        ArrivalProcess, BatchPolicy, ControlConfig, ModelKind, RequestClass, ServeConfig,
        ServiceModelConfig, WorkloadMix,
    };
    let rate: f64 = parse_positive(positional.first().copied(), 16_000.0, "arrival rate (rps)")?;
    if !rate.is_finite() {
        return Err("arrival rate must be finite".into());
    }
    let fleet: usize = parse_positive(positional.get(1).copied(), 2, "fleet size")?;
    let batch: usize = parse_positive(positional.get(2).copied(), 8, "batch size")?;
    let window_us: f64 = match positional.get(3) {
        Some(a) => a.parse().map_err(|_| format!("`{a}` is not a window in us"))?,
        None => 50.0,
    };
    if !(window_us.is_finite() && window_us >= 0.0) {
        return Err("window must be finite and non-negative".into());
    }
    Ok(ServeConfig {
        fleet,
        policy: BatchPolicy::new(batch, window_us * 1e3),
        arrival: ArrivalProcess::poisson(rate),
        mix: WorkloadMix::single(RequestClass::new(ModelKind::BertBase, 128)),
        horizon_ns: 1e8,
        seed: 2023,
        max_queue: 256,
        deadline_ns: 2e6,
        service: ServiceModelConfig::default(),
        control: ControlConfig::default(),
    })
}

fn cmd_blame(args: &[String]) -> Result<(), String> {
    use star::serve::{shards_from_env, simulate_full, BLAME_SIDECAR_KEY};
    let mut trace_path: Option<std::path::PathBuf> = None;
    let mut shards: Option<usize> = None;
    let mut positional: Vec<&String> = Vec::new();
    for a in args {
        if a == "--trace" {
            trace_path = Some(std::path::PathBuf::from("blame_trace.json"));
        } else if let Some(p) = a.strip_prefix("--trace=") {
            if p.is_empty() {
                return Err("--trace= needs a path".into());
            }
            trace_path = Some(p.into());
        } else if let Some(n) = a.strip_prefix("--shards=") {
            shards = Some(parse_shards(n)?);
        } else if a.starts_with("--") {
            return Err(format!("unknown flag `{a}`"));
        } else {
            positional.push(a);
        }
    }
    let cfg = serve_point_config(&positional)?;
    let shards = shards.unwrap_or_else(shards_from_env);
    let outcome = simulate_full(&cfg, shards, false, None, false, None, true);
    let r = &outcome.report;
    let blame = outcome.blame.as_ref().expect("blamed run carries blame tables");

    println!(
        "critical-path blame: {} on {} STAR instance(s), policy {}:",
        cfg.mix.classes()[0],
        cfg.fleet,
        cfg.policy
    );
    println!(
        "  simulated: arrivals {}   completed {}   goodput {:.0} rps   p99 {:.3} ms",
        r.arrivals, r.completed, r.goodput_rps, r.latency.p99_ms
    );
    println!("  (the report above is bitwise identical to an unblamed run)\n");
    print!("{}", blame.render());
    if let Some(path) = trace_path {
        let json = serde_json::to_string(&blame.to_object_json()).map_err(|e| e.to_string())?;
        std::fs::write(&path, &json).map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!(
            "  blame dump: {} requests, {} batches -> {} (open in https://ui.perfetto.dev; \
             tables ride in the `{BLAME_SIDECAR_KEY}` sidecar)",
            blame.requests.len(),
            blame.batches.len(),
            path.display()
        );
    }
    Ok(())
}

fn cmd_whatif(args: &[String]) -> Result<(), String> {
    use star::serve::{run_what_ifs, shards_from_env, WhatIf};
    let mut shards: Option<usize> = None;
    let mut positional: Vec<&String> = Vec::new();
    for a in args {
        if let Some(n) = a.strip_prefix("--shards=") {
            shards = Some(parse_shards(n)?);
        } else if a.starts_with("--") {
            return Err(format!("unknown flag `{a}`"));
        } else {
            positional.push(a);
        }
    }
    let cfg = serve_point_config(&positional)?;
    let shards = shards.unwrap_or_else(shards_from_env);
    let report = run_what_ifs(&cfg, shards, &WhatIf::standard());

    println!(
        "what-if profile: {} on {} STAR instance(s), policy {} — each row is the \
         same seeded workload re-simulated under one intervention:",
        cfg.mix.classes()[0],
        cfg.fleet,
        cfg.policy
    );
    print!("{}", report.render());
    if let Some(best) = report.best() {
        if best.delta_p99_ms < 0.0 {
            println!(
                "  optimize this next: {} ({:+.3} ms p99, {:+.0} rps goodput)",
                best.label, best.delta_p99_ms, best.delta_goodput_rps
            );
        } else {
            println!("  no intervention in the menu improves p99 at this operating point");
        }
    }
    Ok(())
}

/// Renders an [`star::serve::SloAnalysis`] as the burn-rate / per-class /
/// exemplar table block shared by `serve --trace` and `trace-analyze`.
fn print_slo_analysis(a: &star::serve::SloAnalysis) {
    println!("SLO analysis (target {:.2}% of requests within deadline):", a.policy.target * 100.0);
    println!(
        "  availability {:.4}%   violations {}/{}",
        a.availability * 100.0,
        a.violations,
        a.total
    );
    match a.time_to_first_violation_ns {
        Some(t) => println!("  first violation at {:.3} ms", t / 1e6),
        None => println!("  no violations"),
    }
    println!("  {:>10} {:>12} {:>12} {:>16}", "window", "peak err %", "peak burn", "first breach");
    for w in &a.windows {
        let breach = match w.first_breach_ns {
            Some(t) => format!("{:.3} ms", t / 1e6),
            None => "-".to_string(),
        };
        println!(
            "  {:>8.1}ms {:>12.2} {:>12.1} {:>16}",
            w.window_ns / 1e6,
            w.peak_error_rate * 100.0,
            w.peak_burn_rate,
            breach
        );
    }
    println!(
        "  {:<20} {:>9} {:>7} {:>6} {:>8} {:>8} {:>12} {:>10}",
        "class", "arrivals", "good", "late", "expired", "rejected", "goodput rps", "p99 ms"
    );
    for c in &a.per_class {
        println!(
            "  {:<20} {:>9} {:>7} {:>6} {:>8} {:>8} {:>12.0} {:>10.3}",
            c.class.to_string(),
            c.arrivals,
            c.good,
            c.late,
            c.expired,
            c.rejected,
            c.goodput_rps,
            c.latency.p99_ms
        );
    }
    if !a.exemplars.is_empty() {
        println!("  slowest {} requests:", a.exemplars.len());
        println!(
            "  {:>8} {:<20} {:>8} {:>11} {:>10} {:>10}",
            "id", "class", "outcome", "latency ms", "queue ms", "invoke ms"
        );
        for e in &a.exemplars {
            let get = |k: &str| e.breakdown_ms.get(k).copied().unwrap_or(0.0);
            println!(
                "  {:>8} {:<20} {:>8} {:>11.3} {:>10.3} {:>10.3}",
                e.id,
                e.class.to_string(),
                e.outcome.as_str(),
                e.latency_ms,
                get("queue"),
                get("invocation")
            );
        }
    }
}

/// Renders an incident dump's root-cause report: the triggers that
/// fired, the captured window, and where the window's latency went.
fn print_incident(dump: &star::serve::IncidentDump) {
    println!(
        "incident: window {:.3} -> {:.3} ms ({:.3} ms captured, post-trigger {:.3} ms)",
        dump.window_start_ns / 1e6,
        dump.window_end_ns / 1e6,
        dump.window_ns() / 1e6,
        dump.post_trigger_ns / 1e6
    );
    println!(
        "  captured {} event rows / {} terminals (pre-window evicted: {} / {})",
        dump.events.len(),
        dump.terminals.len(),
        dump.pre_events_evicted,
        dump.pre_terminals_evicted
    );
    println!("  {:>14} {:>12} {:>12} {:>12}", "trigger", "at ms", "value", "threshold");
    for t in &dump.triggers {
        println!(
            "  {:>14} {:>12.3} {:>12.2} {:>12.2}",
            t.kind.as_str(),
            t.t_ns / 1e6,
            t.value,
            t.threshold
        );
        if let Some(b) = &t.burn {
            println!(
                "  {:>14} window {:.1} ms, peak error {:.2} %, peak burn {:.1}",
                "",
                b.window_ns / 1e6,
                b.peak_error_rate * 100.0,
                b.peak_burn_rate
            );
        }
    }
    let rep = &dump.report;
    let w = &rep.waterfall;
    if w.completed > 0 {
        println!("  latency waterfall ({} completed, {:.3} ms total):", w.completed, w.total_ms);
        let pct = |part: f64| if w.total_ms > 0.0 { part / w.total_ms * 100.0 } else { 0.0 };
        for (name, part) in [
            ("queueing", w.queueing_ms),
            ("batch window", w.batch_window_ms),
            ("overhead", w.overhead_ms),
            ("projection", w.projection_ms),
            ("qk fill", w.qk_fill_ms),
            ("softmax stream", w.softmax_stream_ms),
            ("av drain", w.av_drain_ms),
        ] {
            println!("    {name:<16} {part:>10.3} ms  {:>5.1} %", pct(part));
        }
    }
    println!(
        "  arrivals: {} in window at {:.0} rps vs trailing baseline {:.0} rps (x{:.2})",
        rep.arrival.window_arrivals,
        rep.arrival.window_rps,
        rep.arrival.baseline_rps,
        rep.arrival.ratio
    );
    println!(
        "  {:<20} {:>9} {:>7} {:>6} {:>8} {:>8}",
        "class", "arrivals", "good", "late", "expired", "rejected"
    );
    for c in &rep.per_class {
        println!(
            "  {:<20} {:>9} {:>7} {:>6} {:>8} {:>8}",
            c.class.to_string(),
            c.arrivals,
            c.good,
            c.late,
            c.expired,
            c.rejected
        );
    }
    println!("  {:>9} {:>8} {:>12} {:>8}", "instance", "batches", "completions", "busy %");
    for i in &rep.per_instance {
        println!(
            "  {:>9} {:>8} {:>12} {:>8.1}",
            i.instance,
            i.batches,
            i.completions,
            i.busy_fraction * 100.0
        );
    }
    if !rep.exemplars.is_empty() {
        println!("  slowest {} requests in window:", rep.exemplars.len());
        println!(
            "  {:>8} {:<20} {:>8} {:>11} {:>10} {:>6} {:>9}",
            "id", "class", "outcome", "latency ms", "queue ms", "batch", "instance"
        );
        for e in &rep.exemplars {
            println!(
                "  {:>8} {:<20} {:>8} {:>11.3} {:>10.3} {:>6} {:>9}",
                e.id,
                e.class.to_string(),
                e.outcome.as_str(),
                e.latency_ms,
                e.queue_ms,
                e.batch_size,
                e.instance.map_or("-".to_string(), |i| i.to_string())
            );
        }
    }
}

fn cmd_incident_analyze(args: &[String]) -> Result<(), String> {
    use star::serve::IncidentDump;
    let path = args
        .first()
        .ok_or("incident-analyze needs an incident dump (produce one with `serve --flight`)")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let value: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    let dump = IncidentDump::from_object_json(&value)?;
    println!(
        "{path}: {} trigger(s), {} classes, {} event rows, {} terminals",
        dump.triggers.len(),
        dump.classes.len(),
        dump.events.len(),
        dump.terminals.len()
    );
    print_incident(&dump);
    Ok(())
}

fn cmd_trace_analyze(args: &[String]) -> Result<(), String> {
    use star::serve::{
        BlameOutcome, IncidentDump, ServeTrace, SloAnalysis, SloPolicy, BLAME_SIDECAR_KEY,
        FLIGHT_SIDECAR_KEY, PROFILE_SIDECAR_KEY, TRACE_SIDECAR_KEY,
    };
    let path = args
        .first()
        .ok_or("trace-analyze needs a trace file (produce one with `serve --trace`)")?;
    let k: usize = match args.get(1) {
        Some(a) => a.parse().map_err(|_| format!("`{a}` is not an exemplar count"))?,
        None => 5,
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let value: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    // Dispatch on the machine-readable sidecar key: serve traces carry
    // `starServe`, incident dumps `starServeIncident`, blame dumps
    // `starServeBlame`, profiler meta-traces `starServeProfile`.
    if value.get(BLAME_SIDECAR_KEY).is_some() {
        let blame = BlameOutcome::from_object_json(&value)?;
        println!(
            "{path}: blame dump ({} requests, {} batches, {} classes, p99 {:.3} ms)",
            blame.requests.len(),
            blame.batches.len(),
            blame.classes.len(),
            blame.report.p99_latency_ms
        );
        print!("{}", blame.render());
        return Ok(());
    }
    if value.get(FLIGHT_SIDECAR_KEY).is_some() {
        let dump = IncidentDump::from_object_json(&value)?;
        println!(
            "{path}: incident dump ({} triggers, {} event rows, {} terminals)",
            dump.triggers.len(),
            dump.events.len(),
            dump.terminals.len()
        );
        print_incident(&dump);
        return Ok(());
    }
    if value.get(TRACE_SIDECAR_KEY).is_none() {
        if value.get(PROFILE_SIDECAR_KEY).is_some() {
            return Err(format!(
                "{path} is a profiler meta-trace (`{PROFILE_SIDECAR_KEY}`), not a serve trace; \
                 it has no per-request spans to analyze"
            ));
        }
        return Err(format!(
            "{path} carries none of the recognized sidecar keys \
             (`{TRACE_SIDECAR_KEY}`, `{FLIGHT_SIDECAR_KEY}`, `{BLAME_SIDECAR_KEY}`, \
             `{PROFILE_SIDECAR_KEY}`)"
        ));
    }
    let trace = ServeTrace::from_object_json(&value)?;
    trace.validate().map_err(|e| format!("{path} violates span invariants: {e}"))?;
    println!(
        "{path}: fleet {}, deadline {:.3} ms, makespan {:.3} ms, {} requests, {} batches",
        trace.fleet,
        trace.deadline_ns / 1e6,
        trace.makespan_ns / 1e6,
        trace.requests.len(),
        trace.batches.len()
    );
    print_slo_analysis(&SloAnalysis::from_trace(&trace, SloPolicy::default(), k));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_format_accepts_paper_formats() {
        assert_eq!(parse_format("q5.2").unwrap(), QFormat::CNEWS);
        assert_eq!(parse_format("q5.3").unwrap(), QFormat::MRPC);
        assert_eq!(parse_format("q4.2").unwrap(), QFormat::COLA);
    }

    #[test]
    fn parse_format_rejects_garbage() {
        assert!(parse_format("5.2").is_err());
        assert!(parse_format("q5").is_err());
        assert!(parse_format("qx.y").is_err());
        assert!(parse_format("q30.10").is_err()); // too wide
    }

    #[test]
    fn commands_run() {
        cmd_softmax(&["q5.3".into(), "1.0".into(), "2.0".into()]).expect("softmax");
        cmd_geometry(&["q5.2".into()]).expect("geometry");
        cmd_engines().expect("engines");
        cmd_fig3(&[]).expect("fig3 default");
        cmd_fig3(&["64".into()]).expect("fig3 custom");
    }

    #[test]
    fn command_errors_are_reported() {
        assert!(cmd_softmax(&[]).is_err());
        assert!(cmd_softmax(&["q5.2".into()]).is_err());
        assert!(cmd_softmax(&["q5.2".into(), "abc".into()]).is_err());
        assert!(cmd_geometry(&[]).is_err());
        assert!(cmd_fig3(&["zero".into()]).is_err());
        assert!(cmd_fig3(&["0".into()]).is_err());
        assert!(cmd_trace(&[]).is_err());
        assert!(cmd_trace(&["q5.3".into(), "0".into()]).is_err());
        assert!(cmd_metrics(&[]).is_err());
        assert!(cmd_metrics(&["nope".into()]).is_err());
    }

    #[test]
    fn trace_and_metrics_commands_run() {
        cmd_trace(&["q5.3".into(), "16".into()]).expect("trace");
        cmd_metrics(&["q5.3".into(), "16".into()]).expect("metrics");
    }

    #[test]
    fn serve_command_runs() {
        // Defaults, and an explicit no-batching single-instance run.
        cmd_serve(&[]).expect("serve defaults");
        cmd_serve(&["8000".into(), "1".into(), "1".into(), "0".into()]).expect("serve explicit");
    }

    #[test]
    fn serve_command_rejects_bad_arguments() {
        assert!(cmd_serve(&["abc".into()]).is_err());
        assert!(cmd_serve(&["0".into()]).is_err());
        assert!(cmd_serve(&["8000".into(), "0".into()]).is_err());
        assert!(cmd_serve(&["8000".into(), "1".into(), "0".into()]).is_err());
        assert!(cmd_serve(&["8000".into(), "1".into(), "2".into(), "-5".into()]).is_err());
        assert!(cmd_serve(&["inf".into()]).is_err());
        assert!(cmd_serve(&["--trace=".into()]).is_err());
        assert!(cmd_serve(&["--flight=".into()]).is_err());
        assert!(cmd_serve(&["--bogus".into()]).is_err());
    }

    #[test]
    fn serve_and_profile_accept_shard_counts() {
        cmd_serve(&["8000".into(), "1".into(), "--shards=4".into()]).expect("serve sharded");
        cmd_profile(&["8000".into(), "1".into(), "--shards=8".into()]).expect("profile sharded");
    }

    #[test]
    fn shard_flag_rejects_bad_counts() {
        assert_eq!(parse_shards("1").unwrap(), 1);
        assert_eq!(parse_shards("64").unwrap(), star::serve::MAX_SHARDS);
        assert!(parse_shards("0").is_err());
        assert!(parse_shards("65").is_err());
        assert!(parse_shards("eight").is_err());
        assert!(cmd_serve(&["--shards=0".into()]).is_err());
        assert!(cmd_serve(&["--shards=".into()]).is_err());
        assert!(cmd_profile(&["--shards=999".into()]).is_err());
    }

    #[test]
    fn health_command_runs() {
        cmd_health(&[]).expect("health defaults");
        cmd_health(&["4000".into(), "2".into(), "8".into(), "50".into()]).expect("health explicit");
        cmd_health(&["4000".into(), "2".into(), "--level".into()]).expect("health leveled");
    }

    #[test]
    fn health_command_rejects_bad_arguments() {
        assert!(cmd_health(&["abc".into()]).is_err());
        assert!(cmd_health(&["0".into()]).is_err());
        assert!(cmd_health(&["8000".into(), "0".into()]).is_err());
        assert!(cmd_health(&["8000".into(), "1".into(), "0".into()]).is_err());
        assert!(cmd_health(&["8000".into(), "1".into(), "2".into(), "-5".into()]).is_err());
        assert!(cmd_health(&["--bogus".into()]).is_err());
        assert!(cmd_health(&["inf".into()]).is_err());
    }

    #[test]
    fn profile_command_runs() {
        cmd_profile(&[]).expect("profile defaults");
        cmd_profile(&["8000".into(), "1".into(), "1".into(), "0".into()])
            .expect("profile explicit");
    }

    #[test]
    fn profile_command_rejects_bad_arguments() {
        assert!(cmd_profile(&["abc".into()]).is_err());
        assert!(cmd_profile(&["0".into()]).is_err());
        assert!(cmd_profile(&["8000".into(), "0".into()]).is_err());
        assert!(cmd_profile(&["8000".into(), "1".into(), "0".into()]).is_err());
        assert!(cmd_profile(&["8000".into(), "1".into(), "2".into(), "-5".into()]).is_err());
        assert!(cmd_profile(&["inf".into()]).is_err());
        assert!(cmd_profile(&["--trace=".into()]).is_err());
        assert!(cmd_profile(&["--bogus".into()]).is_err());
    }

    #[test]
    fn control_command_runs() {
        cmd_control(&[]).expect("control defaults");
        cmd_control(&["8000".into(), "1".into(), "8".into(), "50".into()])
            .expect("control explicit");
        for policy in ["fifo", "wfq", "edf"] {
            cmd_control(&[format!("--policy={policy}")]).expect(policy);
        }
        for placement in ["first-idle", "least-loaded", "fastest", "energy-greedy"] {
            cmd_control(&[format!("--placement={placement}")]).expect(placement);
        }
        cmd_control(&["--autoscale=2:3".into()]).expect("control bounded");
        cmd_control(&["--autoscale=off".into()]).expect("control static");
        cmd_control(&["--shards=4".into()]).expect("control sharded");
        // Every knob at its no-op default: the baseline path, no report.
        cmd_control(&[
            "--policy=fifo".into(),
            "--placement=first-idle".into(),
            "--autoscale=off".into(),
        ])
        .expect("control no-op");
    }

    #[test]
    fn control_command_rejects_bad_arguments() {
        assert!(cmd_control(&["abc".into()]).is_err());
        assert!(cmd_control(&["0".into()]).is_err());
        assert!(cmd_control(&["8000".into(), "0".into()]).is_err());
        assert!(cmd_control(&["8000".into(), "1".into(), "0".into()]).is_err());
        assert!(cmd_control(&["8000".into(), "1".into(), "2".into(), "-5".into()]).is_err());
        assert!(cmd_control(&["inf".into()]).is_err());
        assert!(cmd_control(&["--bogus".into()]).is_err());
        assert!(cmd_control(&["--policy=lifo".into()]).is_err());
        assert!(cmd_control(&["--placement=random".into()]).is_err());
        assert!(cmd_control(&["--autoscale=4".into()]).is_err());
        assert!(cmd_control(&["--autoscale=0:4".into()]).is_err());
        assert!(cmd_control(&["--autoscale=4:1".into()]).is_err());
        assert!(cmd_control(&["--autoscale=a:b".into()]).is_err());
        assert!(cmd_control(&["--shards=0".into()]).is_err());
    }

    #[test]
    fn blame_command_runs() {
        cmd_blame(&[]).expect("blame defaults");
        cmd_blame(&["8000".into(), "1".into(), "1".into(), "0".into()]).expect("blame explicit");
        cmd_blame(&["8000".into(), "1".into(), "--shards=4".into()]).expect("blame sharded");
    }

    #[test]
    fn blame_command_rejects_bad_arguments() {
        assert!(cmd_blame(&["abc".into()]).is_err());
        assert!(cmd_blame(&["0".into()]).is_err());
        assert!(cmd_blame(&["8000".into(), "0".into()]).is_err());
        assert!(cmd_blame(&["8000".into(), "1".into(), "0".into()]).is_err());
        assert!(cmd_blame(&["8000".into(), "1".into(), "2".into(), "-5".into()]).is_err());
        assert!(cmd_blame(&["inf".into()]).is_err());
        assert!(cmd_blame(&["--trace=".into()]).is_err());
        assert!(cmd_blame(&["--shards=0".into()]).is_err());
        assert!(cmd_blame(&["--bogus".into()]).is_err());
    }

    #[test]
    fn whatif_command_runs() {
        cmd_whatif(&["8000".into(), "1".into(), "4".into(), "50".into()]).expect("whatif explicit");
        cmd_whatif(&["8000".into(), "1".into(), "--shards=4".into()]).expect("whatif sharded");
    }

    #[test]
    fn whatif_command_rejects_bad_arguments() {
        assert!(cmd_whatif(&["abc".into()]).is_err());
        assert!(cmd_whatif(&["0".into()]).is_err());
        assert!(cmd_whatif(&["8000".into(), "0".into()]).is_err());
        assert!(cmd_whatif(&["8000".into(), "1".into(), "0".into()]).is_err());
        assert!(cmd_whatif(&["8000".into(), "1".into(), "2".into(), "-5".into()]).is_err());
        assert!(cmd_whatif(&["inf".into()]).is_err());
        assert!(cmd_whatif(&["--shards=0".into()]).is_err());
        assert!(cmd_whatif(&["--trace".into()]).is_err());
    }

    #[test]
    fn blame_dump_round_trips_through_trace_analyze() {
        let path = std::env::temp_dir().join(format!("star_cli_blame_{}.json", std::process::id()));
        let path_str = path.to_str().expect("utf8 temp path").to_string();
        cmd_blame(&["8000".into(), "1".into(), format!("--trace={path_str}")])
            .expect("blame --trace");
        let text = std::fs::read_to_string(&path).expect("blame dump written");
        let value: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        assert!(value.get("traceEvents").is_some(), "Perfetto object form");
        let blame = star::serve::BlameOutcome::from_object_json(&value).expect("sidecar");
        for b in &blame.requests {
            assert_eq!(b.components_sum(), b.latency_ns, "conservation survives the round trip");
        }
        cmd_trace_analyze(std::slice::from_ref(&path_str)).expect("trace-analyze dispatch");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_sidecar_error_names_all_keys() {
        let path = std::env::temp_dir().join(format!("star_cli_nokey_{}.json", std::process::id()));
        std::fs::write(&path, "{\"traceEvents\": []}").expect("write plain object");
        let err = cmd_trace_analyze(&[path.to_str().expect("utf8").to_string()])
            .expect_err("plain chrome object rejected");
        for key in ["starServe", "starServeIncident", "starServeBlame", "starServeProfile"] {
            assert!(err.contains(key), "error must name `{key}`: {err}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn profile_trace_is_valid_chrome_object_with_sidecar() {
        let path =
            std::env::temp_dir().join(format!("star_cli_profile_{}.json", std::process::id()));
        let path_str = path.to_str().expect("utf8 temp path").to_string();
        cmd_profile(&["8000".into(), "1".into(), format!("--trace={path_str}")])
            .expect("profile --trace");
        let text = std::fs::read_to_string(&path).expect("meta-trace written");
        let value: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        assert!(value.get("traceEvents").is_some());
        let sidecar =
            value.get(star::serve::PROFILE_SIDECAR_KEY).expect("work/wall sidecar present");
        let work = sidecar.get("work").expect("work counters");
        assert!(
            work.get("events_total").and_then(serde_json::Value::as_u64).unwrap_or(0) > 0,
            "profiled run saw events"
        );
        assert!(sidecar.get("wall").is_some());
        assert!(sidecar.get("eventsPerSec").is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_trace_round_trips_through_trace_analyze() {
        let path = std::env::temp_dir().join(format!("star_cli_trace_{}.json", std::process::id()));
        let path_str = path.to_str().expect("utf8 temp path").to_string();
        cmd_serve(&["8000".into(), "1".into(), format!("--trace={path_str}")])
            .expect("serve --trace");
        // The file is Perfetto's object form with our sidecar, and the
        // analyzer accepts it.
        let text = std::fs::read_to_string(&path).expect("trace written");
        let value: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        assert!(value.get("traceEvents").is_some());
        let trace = star::serve::ServeTrace::from_object_json(&value).expect("sidecar");
        trace.validate().expect("span invariants hold");
        cmd_trace_analyze(&[path_str.clone(), "3".into()]).expect("trace-analyze");
        assert!(cmd_trace_analyze(&[path_str, "nope".into()]).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_analyze_rejects_bad_inputs() {
        assert!(cmd_trace_analyze(&[]).is_err());
        assert!(cmd_trace_analyze(&["/definitely/not/here.json".into()]).is_err());
        // A plain Chrome trace (no sidecar) is rejected with a pointer to
        // the sidecar key.
        let path = std::env::temp_dir().join(format!("star_cli_plain_{}.json", std::process::id()));
        std::fs::write(&path, "[]").expect("write plain trace");
        let err = cmd_trace_analyze(&[path.to_str().expect("utf8").to_string()])
            .expect_err("plain array rejected");
        assert!(err.contains("starServe"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_flight_dump_round_trips_through_both_analyzers() {
        // The 80k rps single-instance point saturates the queue, so the
        // default triggers fire deterministically and a dump is written.
        let path =
            std::env::temp_dir().join(format!("star_cli_flight_{}.json", std::process::id()));
        let path_str = path.to_str().expect("utf8 temp path").to_string();
        cmd_serve(&["80000".into(), "1".into(), format!("--flight={path_str}")])
            .expect("serve --flight");
        let text = std::fs::read_to_string(&path).expect("incident dump written");
        let value: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        assert!(value.get("traceEvents").is_some(), "Perfetto object form");
        let dump = star::serve::IncidentDump::from_object_json(&value).expect("sidecar");
        assert!(!dump.triggers.is_empty());
        // Both the dedicated analyzer and trace-analyze (via sidecar
        // detection) accept the file.
        cmd_incident_analyze(std::slice::from_ref(&path_str)).expect("incident-analyze");
        cmd_trace_analyze(std::slice::from_ref(&path_str)).expect("trace-analyze dispatch");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_flight_without_trigger_writes_nothing() {
        // The default 16k rps / 2-instance point is underloaded: no
        // trigger fires, and the dump path stays untouched.
        let path =
            std::env::temp_dir().join(format!("star_cli_noflight_{}.json", std::process::id()));
        std::fs::remove_file(&path).ok();
        cmd_serve(&["--flight=".to_string() + path.to_str().expect("utf8")])
            .expect("serve --flight quiet");
        assert!(!path.exists(), "no incident, no dump file");
    }

    #[test]
    fn incident_analyze_rejects_bad_inputs() {
        assert!(cmd_incident_analyze(&[]).is_err());
        assert!(cmd_incident_analyze(&["/definitely/not/here.json".into()]).is_err());
        let path =
            std::env::temp_dir().join(format!("star_cli_notdump_{}.json", std::process::id()));
        std::fs::write(&path, "{\"traceEvents\": []}").expect("write plain object");
        let err = cmd_incident_analyze(&[path.to_str().expect("utf8").to_string()])
            .expect_err("plain chrome object rejected");
        assert!(err.contains("starServeIncident"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_analyze_identifies_profiler_meta_traces() {
        // A profiler meta-trace has a sidecar, just not a span sidecar —
        // the error must say what the file *is*, not just what it isn't.
        let path =
            std::env::temp_dir().join(format!("star_cli_profdump_{}.json", std::process::id()));
        let path_str = path.to_str().expect("utf8 temp path").to_string();
        cmd_profile(&["8000".into(), "1".into(), format!("--trace={path_str}")])
            .expect("profile --trace");
        let err = cmd_trace_analyze(&[path_str]).expect_err("meta-trace rejected");
        assert!(err.contains("starServeProfile"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_json_is_valid_chrome_trace() {
        let durations = paper_row_durations(QFormat::MRPC, 8).expect("durations");
        let trace = pipeline_chrome_trace(&durations, PipelineMode::VectorGrained, 1);
        let json = trace.to_json_string();
        let value: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = match value {
            serde_json::Value::Seq(v) => v,
            other => panic!("expected array, got {other:?}"),
        };
        // ph:"X" complete events present with ts/dur/pid/tid fields.
        let complete: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(serde_json::Value::as_str) == Some("X"))
            .collect();
        assert_eq!(complete.len(), 8 * 3);
        for e in complete {
            for key in ["name", "ts", "dur", "pid", "tid"] {
                assert!(e.get(key).is_some(), "missing {key}");
            }
        }
    }

    #[test]
    fn metrics_snapshot_covers_all_layers() {
        let (result, snap) =
            star::telemetry::with_scoped(|| cmd_metrics(&["q5.2".into(), "16".into()]));
        result.expect("metrics");
        // cmd_metrics uses its own inner scope, so the outer scope stays
        // empty — re-run the workload directly to inspect the counters.
        assert!(snap.counters.is_empty());
        let ((), snap) = star::telemetry::with_scoped(|| {
            let mut engine =
                StarSoftmax::new(StarSoftmaxConfig::new(QFormat::CNEWS)).expect("engine");
            let _ = engine.softmax_row(&[1.0, -0.5, 2.0, 0.25]);
        });
        assert!(snap.counters.keys().any(|k| k.starts_with("device.")), "{:?}", snap.counters);
        assert!(snap.counters.keys().any(|k| k.starts_with("crossbar.")), "{:?}", snap.counters);
        assert!(snap.counters.keys().any(|k| k.starts_with("star.")), "{:?}", snap.counters);
    }
}
