//! # STAR — an RRAM-crossbar softmax engine for attention models
//!
//! A from-scratch Rust reproduction of *STAR: An Efficient Softmax Engine
//! for Attention Model with RRAM Crossbar* (Zhai, Li, Yan, Wang —
//! DATE 2023): the crossbar softmax engine itself (bit-accurate functional
//! simulation and an area/power/latency cost model), every substrate it
//! stands on (RRAM device models, CAM/LUT/VMM/CAM-SUB crossbar arrays,
//! fixed-point arithmetic, a BERT-base attention workload), the designs it
//! is compared against (a baseline FP32 CMOS softmax, Softermax,
//! PipeLayer, ReTransformer, a Titan RTX model), and the experiment
//! harness that regenerates every table and figure of the paper.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! name. Depend on the individual `star-*` crates for narrower builds.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`fixed`] | `star-fixed` | `Q(int,frac)` fixed point, encodings, range analysis |
//! | [`device`] | `star-device` | RRAM cells, noise, ADC/DAC, CMOS blocks, cost units |
//! | [`crossbar`] | `star-crossbar` | VMM / CAM / LUT / CAM-SUB array simulators |
//! | [`core`] | `star-core` | the STAR engine, baselines, vector-grained pipeline |
//! | [`attention`] | `star-attention` | matrices, multi-head attention, BERT-base config |
//! | [`workload`] | `star-workload` | calibrated CNEWS/MRPC/CoLA score proxies |
//! | [`arch`] | `star-arch` | GPU / PipeLayer / ReTransformer / STAR accelerators |
//! | [`telemetry`] | `star-telemetry` | counters/gauges/histograms, Chrome trace emission |
//! | [`serve`] | `star-serve` | discrete-event serving simulator: arrivals, batching, SLOs |
//!
//! # Quickstart
//!
//! ```
//! use star::core::{StarSoftmax, StarSoftmaxConfig};
//! use star::attention::RowSoftmax;
//! use star::fixed::QFormat;
//!
//! // The paper's 8-bit CNEWS configuration.
//! let mut engine = StarSoftmax::new(StarSoftmaxConfig::new(QFormat::CNEWS))?;
//! let probs = engine.softmax_row(&[2.0, -1.0, 0.5, 3.25]);
//! assert!(probs[3] > probs[0]);
//! # Ok::<(), star::core::BuildStarError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use star_arch as arch;
pub use star_attention as attention;
pub use star_core as core;
pub use star_crossbar as crossbar;
pub use star_device as device;
pub use star_fixed as fixed;
pub use star_serve as serve;
pub use star_telemetry as telemetry;
pub use star_workload as workload;
