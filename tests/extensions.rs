//! Integration tests over the extension surfaces: masked attention through
//! the crossbar engine, the generalized function units, the engine bank,
//! and the design-space explorer — all via the facade crate.

use star::attention::{masked_attention, AttentionMask, ExactSoftmax, Matrix};
use star::core::design_space::{pareto_front, DesignSpace};
use star::core::{EngineBank, LutFunctionUnit, StarSoftmax, StarSoftmaxConfig};
use star::fixed::QFormat;
use star::workload::{Dataset, ScoreTrace};

#[test]
fn causal_masking_through_the_crossbar_engine() {
    // The STAR engine sees masked positions as the format's most negative
    // score; their exponential code underflows to 0, so the masked
    // probability is exactly zero — same as the reference.
    let x = Matrix::from_fn(6, 4, |r, c| ((r * 4 + c) as f64 * 0.43).sin() * 3.0);
    let mut engine = StarSoftmax::new(StarSoftmaxConfig::new(QFormat::MRPC)).expect("engine");
    let star =
        masked_attention(&x, &x, &x, &AttentionMask::Causal, -1e4, &mut engine).expect("shapes ok");
    let exact = masked_attention(
        &x,
        &x,
        &x,
        &AttentionMask::Causal,
        f64::NEG_INFINITY,
        &mut ExactSoftmax::new(),
    )
    .expect("shapes ok");
    for q in 0..6 {
        for k in 0..6 {
            if k > q {
                assert_eq!(star.probs.get(q, k), 0.0, "({q},{k}) must be masked");
            } else {
                let err = (star.probs.get(q, k) - exact.probs.get(q, k)).abs();
                assert!(err < 0.02, "({q},{k}) err {err}");
            }
        }
    }
}

#[test]
fn padding_mask_with_engine_and_bank_agree() {
    let x = Matrix::from_fn(5, 4, |r, c| ((r + 2 * c) as f64 * 0.7).cos() * 2.0);
    let mask = AttentionMask::Padding(vec![true, true, false, true, false]);
    let mut engine = StarSoftmax::new(StarSoftmaxConfig::new(QFormat::MRPC)).expect("engine");
    let mut bank = EngineBank::new(StarSoftmaxConfig::new(QFormat::MRPC), 3).expect("bank");
    let a = masked_attention(&x, &x, &x, &mask, -1e4, &mut engine).expect("shapes");
    let b = masked_attention(&x, &x, &x, &mask, -1e4, &mut bank).expect("shapes");
    assert!(a.probs.max_abs_diff(&b.probs).expect("shape") < 1e-12);
    for q in 0..5 {
        assert_eq!(a.probs.get(q, 2), 0.0);
        assert_eq!(a.probs.get(q, 4), 0.0);
    }
}

#[test]
fn function_units_cover_transformer_nonlinearities() {
    let fmt = QFormat::new(3, 4).expect("valid");
    let mut gelu = LutFunctionUnit::gelu(fmt, 16);
    let mut sigmoid = LutFunctionUnit::sigmoid(fmt, 16);
    let mut tanh = LutFunctionUnit::tanh(fmt, 16);
    for i in -24..=24 {
        let x = i as f64 / 4.0;
        assert!((gelu.evaluate(x) - star::attention::gelu(x)).abs() < 0.05, "gelu({x})");
        assert!((sigmoid.evaluate(x) - 1.0 / (1.0 + (-x).exp())).abs() < 0.02, "sigmoid({x})");
        assert!((tanh.evaluate(x) - x.tanh()).abs() < 0.04, "tanh({x})");
    }
    // The units share the softmax engine's cost structure: one search + one
    // read per evaluation.
    let cost = gelu.evaluate_cost();
    assert!(cost.latency.value() <= 2.5, "search+read cycles, got {}", cost.latency);
}

#[test]
fn design_space_keeps_paper_config_on_frontier() {
    // Evaluate at the paper's sequence length (128 columns). At short rows
    // the 16- and 18-bit exponential words are statistically tied (the error
    // gap is ~1e-8, below the trace sampling noise), so whether the paper
    // config survives strict Pareto filtering there is a coin flip on the
    // RNG stream. At 128 columns the extra LUT precision is a consistent
    // win across seeds and the assertion is meaningful.
    let trace = ScoreTrace::generate(Dataset::Mrpc, 48, 128, 0xE57);
    let space = DesignSpace::paper_neighborhood();
    let points = space.evaluate(&trace.rows).expect("all build");
    assert_eq!(points.len(), space.len());
    let front = pareto_front(&points);
    // The paper's 9-bit configuration is Pareto-optimal.
    assert!(
        front
            .iter()
            .any(|p| p.format == QFormat::MRPC && p.exp_word_bits == 18 && p.quotient_bits == 16),
        "paper config missing from frontier: {front:#?}"
    );
}

#[test]
fn temperature_margins_back_the_digital_cam_model() {
    // The crossbar simulator treats CAM decisions as noise-robust; the
    // device-level justification is that the on/off window stays far above
    // the sense requirement across the industrial temperature range.
    use star::device::{TechnologyParams, TemperatureModel};
    let tech = TechnologyParams::cmos32();
    let temp = TemperatureModel::typical();
    for kelvin in [233.15, 300.0, 358.15] {
        assert!(temp.readable_at(kelvin, tech.on_off_ratio(), 10.0), "T={kelvin}");
    }
}

#[test]
fn stochastic_rounding_unbiased_through_engine_inputs() {
    use star::fixed::Fixed;
    let fmt = QFormat::CNEWS;
    let target = 3.1; // between 3.0 and 3.25 on the q5.2 grid
    let n = 4096;
    let mean: f64 = (0..n)
        .map(|i| {
            let dither = (i as f64 * 0.618_033_988_75) % 1.0;
            Fixed::from_f64_stochastic(target, fmt, dither).to_f64()
        })
        .sum::<f64>()
        / n as f64;
    assert!((mean - target).abs() < 0.01, "mean {mean}");
}
