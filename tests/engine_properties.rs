//! Property-based tests over the softmax engines: distribution invariants
//! that must hold for arbitrary score rows.

use proptest::prelude::*;
use star::attention::{ExactSoftmax, RowSoftmax};
use star::core::{CmosBaselineSoftmax, Softermax, StarSoftmax, StarSoftmaxConfig};
use star::fixed::QFormat;

/// Score rows inside the MRPC format's representable range.
fn score_rows() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-30.0f64..30.0, 1..64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn star_outputs_are_probabilities(row in score_rows()) {
        let mut engine = StarSoftmax::new(StarSoftmaxConfig::new(QFormat::MRPC)).expect("engine");
        let p = engine.softmax_row(&row);
        prop_assert_eq!(p.len(), row.len());
        for &v in &p {
            prop_assert!((0.0..=1.0).contains(&v), "probability {} out of range", v);
        }
        let sum: f64 = p.iter().sum();
        // Quantized normalization: the divider truncates, so the sum is
        // slightly below 1 but never far off.
        prop_assert!(sum > 0.95 && sum <= 1.0 + 1e-9, "sum {}", sum);
    }

    #[test]
    fn star_monotone_in_scores(row in score_rows()) {
        // Larger score ⇒ probability at least as large (weak monotonicity
        // survives quantization because codes are monotone).
        let mut engine = StarSoftmax::new(StarSoftmaxConfig::new(QFormat::MRPC)).expect("engine");
        let p = engine.softmax_row(&row);
        for i in 0..row.len() {
            for j in 0..row.len() {
                if row[i] >= row[j] + 0.25 {
                    prop_assert!(
                        p[i] >= p[j],
                        "score {} > {} but prob {} < {}",
                        row[i], row[j], p[i], p[j]
                    );
                }
            }
        }
    }

    #[test]
    fn star_shift_invariance_on_grid(row in prop::collection::vec(-10.0f64..10.0, 2..32)) {
        // Shifting all scores by an exactly representable constant must
        // not change the output (max subtraction cancels it) as long as
        // nothing saturates.
        let mut engine = StarSoftmax::new(StarSoftmaxConfig::new(QFormat::MRPC)).expect("engine");
        let a = engine.softmax_row(&row);
        let shifted: Vec<f64> = row.iter().map(|&x| x + 8.0).collect();
        let b = engine.softmax_row(&shifted);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-12, "{} vs {}", x, y);
        }
    }

    #[test]
    fn engines_close_to_exact(row in prop::collection::vec(-12.0f64..12.0, 2..48)) {
        let mut exact = ExactSoftmax::new();
        let reference = exact.softmax_row(&row);

        let mut star = StarSoftmax::new(StarSoftmaxConfig::new(QFormat::MRPC)).expect("engine");
        let p = star.softmax_row(&row);
        for (a, b) in p.iter().zip(&reference) {
            prop_assert!((a - b).abs() < 0.05, "star {} vs exact {}", a, b);
        }

        let mut soft = Softermax::new(QFormat::MRPC, 4);
        let q = soft.softmax_row(&row);
        for (a, b) in q.iter().zip(&reference) {
            prop_assert!((a - b).abs() < 0.08, "softermax {} vs exact {}", a, b);
        }

        let mut cmos = CmosBaselineSoftmax::new(8);
        let r = cmos.softmax_row(&row);
        for (a, b) in r.iter().zip(&reference) {
            prop_assert!((a - b).abs() < 1e-5, "cmos {} vs exact {}", a, b);
        }
    }

    #[test]
    fn row_cost_monotone_in_length(n in 1usize..256, m in 1usize..256) {
        use star::core::SoftmaxEngine;
        let engine = StarSoftmax::new(StarSoftmaxConfig::new(QFormat::CNEWS)).expect("engine");
        let (lo, hi) = if n <= m { (n, m) } else { (m, n) };
        let a = engine.row_cost(lo);
        let b = engine.row_cost(hi);
        prop_assert!(b.latency.value() >= a.latency.value());
        prop_assert!(b.energy.value() >= a.energy.value());
    }
}
