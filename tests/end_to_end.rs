//! End-to-end integration: multi-head attention executed with every
//! softmax engine, checked against the exact reference.

use rand::SeedableRng;
use star::attention::{
    multi_head_attention, AccuracyReport, AttentionConfig, ExactSoftmax, RowSoftmax,
};
use star::core::{CmosBaselineSoftmax, Softermax, StarSoftmax, StarSoftmaxConfig};
use star::fixed::QFormat;
use star::workload::random_matrix;

fn inputs(cfg: &AttentionConfig, seed: u64) -> [star::attention::Matrix; 3] {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    [
        random_matrix(cfg.seq_len, cfg.d_model, 2.0, &mut rng),
        random_matrix(cfg.seq_len, cfg.d_model, 2.0, &mut rng),
        random_matrix(cfg.seq_len, cfg.d_model, 2.0, &mut rng),
    ]
}

fn run_with<S: RowSoftmax>(
    cfg: &AttentionConfig,
    softmax: &mut S,
    seed: u64,
) -> (AccuracyReport, AccuracyReport) {
    let [q, k, v] = inputs(cfg, seed);
    let exact = multi_head_attention(cfg, &q, &k, &v, &mut ExactSoftmax::new()).expect("shapes");
    let approx = multi_head_attention(cfg, &q, &k, &v, softmax).expect("shapes");
    (
        AccuracyReport::compare(&exact.probs, &approx.probs),
        AccuracyReport::compare(&exact.context, &approx.context),
    )
}

#[test]
fn star_engine_attention_accuracy() {
    let cfg = AttentionConfig { d_model: 32, num_heads: 4, seq_len: 16, num_layers: 1, d_ff: 64 };
    let mut engine = StarSoftmax::new(StarSoftmaxConfig::new(QFormat::MRPC)).expect("engine");
    let (probs, ctx) = run_with(&cfg, &mut engine, 1);
    assert!(probs.mean_abs_error < 5e-3, "prob err {}", probs.mean_abs_error);
    assert!(probs.mean_cosine_similarity > 0.999);
    assert!(ctx.max_abs_error < 0.1, "context err {}", ctx.max_abs_error);
    assert_eq!(engine.fault_events(), 0);
}

#[test]
fn cmos_baseline_attention_nearly_exact() {
    let cfg = AttentionConfig { d_model: 32, num_heads: 2, seq_len: 12, num_layers: 1, d_ff: 64 };
    let mut unit = CmosBaselineSoftmax::new(8);
    let (probs, ctx) = run_with(&cfg, &mut unit, 2);
    assert!(probs.max_abs_error < 1e-6);
    assert!(ctx.max_abs_error < 1e-5);
}

#[test]
fn softermax_attention_close() {
    let cfg = AttentionConfig { d_model: 32, num_heads: 2, seq_len: 12, num_layers: 1, d_ff: 64 };
    let mut unit = Softermax::new(QFormat::MRPC, 4);
    let (probs, _) = run_with(&cfg, &mut unit, 3);
    assert!(probs.mean_abs_error < 2e-2, "prob err {}", probs.mean_abs_error);
    assert!(probs.mean_cosine_similarity > 0.99);
}

#[test]
fn engines_rank_consistently_on_shared_row() {
    let scores = [3.5, -1.25, 0.75, 2.0, -4.0, 1.5];
    let reference = ExactSoftmax::new().softmax_row(&scores);
    let ref_order = order(&reference);
    let mut star = StarSoftmax::new(StarSoftmaxConfig::new(QFormat::MRPC)).expect("engine");
    let mut soft = Softermax::new(QFormat::MRPC, 4);
    let mut cmos = CmosBaselineSoftmax::new(4);
    assert_eq!(order(&star.softmax_row(&scores)), ref_order);
    assert_eq!(order(&soft.softmax_row(&scores)), ref_order);
    assert_eq!(order(&cmos.softmax_row(&scores)), ref_order);
}

/// Indices sorted by descending probability.
fn order(p: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..p.len()).collect();
    idx.sort_by(|&a, &b| p[b].partial_cmp(&p[a]).expect("finite"));
    idx
}

#[test]
fn accelerator_reports_are_internally_consistent() {
    use star::arch::{gops_per_watt, Accelerator, RramAccelerator};
    let cfg = AttentionConfig::bert_base(64);
    for report in [
        RramAccelerator::pipelayer().evaluate(&cfg),
        RramAccelerator::retransformer().evaluate(&cfg),
        RramAccelerator::star().evaluate(&cfg),
    ] {
        assert!(report.latency.value() > 0.0, "{}", report.name);
        assert!(report.total_energy >= report.dynamic_energy, "{}", report.name);
        // avg_power × latency == total energy.
        let e = report.avg_power * report.latency;
        assert!(
            (e.value() - report.total_energy.value()).abs() / report.total_energy.value() < 1e-9,
            "{}",
            report.name
        );
        // Efficiency is derived from ops and total energy.
        let eff = gops_per_watt(report.ops, report.total_energy);
        assert!((eff - report.efficiency_gops_per_watt).abs() / eff < 1e-9, "{}", report.name);
        // Softmax share is a fraction.
        assert!((0.0..=1.0).contains(&report.softmax_share()), "{}", report.name);
    }
}

#[test]
fn longer_sequences_cost_more_everywhere() {
    use star::arch::{Accelerator, RramAccelerator};
    let short = AttentionConfig::bert_base(64);
    let long = AttentionConfig::bert_base(256);
    for make in [RramAccelerator::pipelayer, RramAccelerator::retransformer, RramAccelerator::star]
    {
        let a = make().evaluate(&short);
        let b = make().evaluate(&long);
        assert!(b.latency > a.latency, "{}", a.name);
        assert!(b.total_energy > a.total_energy, "{}", a.name);
        assert!(b.ops > a.ops, "{}", a.name);
    }
}
