//! Heavy end-to-end test: one full BERT-base-scale attention layer (all 12
//! heads, seq 64) executed functionally through the STAR engine bank.
//! Ignored by default; run with `cargo test --release -- --ignored`.

use rand::SeedableRng;
use star::attention::{multi_head_attention, AccuracyReport, AttentionConfig, ExactSoftmax};
use star::core::{EngineBank, RowSoftmax, StarSoftmaxConfig};
use star::fixed::QFormat;
use star::workload::random_matrix;

#[test]
#[ignore = "heavy: full 12-head functional crossbar simulation (~minutes in debug, seconds in release)"]
fn bert_base_layer_through_engine_bank() {
    let cfg =
        AttentionConfig { d_model: 768, num_heads: 12, seq_len: 64, num_layers: 1, d_ff: 3072 };
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xB16);
    let scale = 1.2; // keeps scores inside the 9-bit format after 1/√64
    let q = random_matrix(cfg.seq_len, cfg.d_model, scale, &mut rng);
    let k = random_matrix(cfg.seq_len, cfg.d_model, scale, &mut rng);
    let v = random_matrix(cfg.seq_len, cfg.d_model, scale, &mut rng);

    let exact = multi_head_attention(&cfg, &q, &k, &v, &mut ExactSoftmax::new()).expect("shapes");
    let mut bank = EngineBank::new(StarSoftmaxConfig::new(QFormat::MRPC).with_max_row_len(64), 10)
        .expect("bank builds");
    let star = multi_head_attention(&cfg, &q, &k, &v, &mut bank).expect("shapes");

    let probs = AccuracyReport::compare(&exact.probs, &star.probs);
    let ctx = AccuracyReport::compare(&exact.context, &star.context);
    assert!(probs.mean_abs_error < 5e-3, "prob error {}", probs.mean_abs_error);
    assert!(probs.mean_cosine_similarity > 0.995, "cosine {}", probs.mean_cosine_similarity);
    assert!(ctx.max_abs_error < 0.2, "context error {}", ctx.max_abs_error);
    assert_eq!(bank.fault_events(), 0);
    // All 12 heads × 64 rows dispatched round-robin: the bank wrapped many
    // times.
    assert_eq!(bank.next_unit(), (12 * 64) % 10);
    let _ = bank.name();
}
