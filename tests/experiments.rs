//! Integration tests asserting every paper artifact within its tolerance
//! band — E1 through E5 and the headline ratios, end to end.

use star::arch::{Accelerator, GpuModel, RramAccelerator};
use star::attention::AttentionConfig;
use star::core::precision::{minimal_format, sweep_formats, AccuracyBar};
use star::core::{CmosBaselineSoftmax, Softermax, SoftmaxEngine, StarSoftmax, StarSoftmaxConfig};
use star::fixed::QFormat;
use star::workload::{Dataset, ScoreTrace};

fn within(measured: f64, paper: f64, tolerance: f64) -> bool {
    (measured - paper).abs() / paper <= tolerance
}

#[test]
fn e1_softmax_share_curve() {
    let gpu = GpuModel::titan_rtx();
    // Monotone share, crossover exactly at 512, peak near the paper's 59.2 %.
    let lens = [64usize, 128, 256, 384, 512, 640, 768, 896, 1024];
    let mut prev = 0.0;
    for &n in &lens {
        let share = gpu.softmax_share(&AttentionConfig::bert_base(n));
        assert!(share > prev, "share not monotone at {n}");
        prev = share;
    }
    assert_eq!(gpu.crossover_seq_len(&lens), Some(512));
    let peak =
        lens.iter().map(|&n| gpu.softmax_share(&AttentionConfig::bert_base(n))).fold(0.0, f64::max);
    assert!(within(peak, 0.592, 0.06), "peak share {peak}");
}

#[test]
fn e2_table1_ratios() {
    let baseline = CmosBaselineSoftmax::new(8).cost_sheet();
    let softermax = Softermax::new(QFormat::CNEWS, 8).cost_sheet();
    let star =
        StarSoftmax::new(StarSoftmaxConfig::new(QFormat::CNEWS)).expect("engine").cost_sheet();

    let sm_area = softermax.area_ratio_to(&baseline);
    let sm_power = softermax.power_ratio_to(&baseline);
    let st_area = star.area_ratio_to(&baseline);
    let st_power = star.power_ratio_to(&baseline);

    assert!(within(sm_area, 0.33, 0.15), "softermax area ratio {sm_area}");
    assert!(within(sm_power, 0.12, 0.15), "softermax power ratio {sm_power}");
    assert!(within(st_area, 0.06, 0.15), "star area ratio {st_area}");
    assert!(within(st_power, 0.05, 0.15), "star power ratio {st_power}");
    // Text-quoted derived ratios vs Softermax: 0.20× area, 0.44× power.
    assert!(within(st_area / sm_area, 0.20, 0.15));
    assert!(within(st_power / sm_power, 0.44, 0.15));
}

#[test]
fn e3_fig3_efficiencies() {
    let cfg = AttentionConfig::bert_base(128);
    let gpu = GpuModel::titan_rtx().evaluate(&cfg);
    let pl = RramAccelerator::pipelayer().evaluate(&cfg);
    let rt = RramAccelerator::retransformer().evaluate(&cfg);
    let st = RramAccelerator::star().evaluate(&cfg);

    // Absolute anchor and the three improvement factors.
    assert!(
        within(st.efficiency_gops_per_watt, 612.66, 0.10),
        "star {}",
        st.efficiency_gops_per_watt
    );
    assert!(within(st.efficiency_gain_over(&gpu), 30.63, 0.10));
    assert!(within(st.efficiency_gain_over(&pl), 4.32, 0.10));
    assert!(within(st.efficiency_gain_over(&rt), 1.31, 0.10));
    // Strict ordering.
    assert!(gpu.efficiency_gops_per_watt < pl.efficiency_gops_per_watt);
    assert!(pl.efficiency_gops_per_watt < rt.efficiency_gops_per_watt);
    assert!(rt.efficiency_gops_per_watt < st.efficiency_gops_per_watt);
}

#[test]
fn e4_bitwidths_match_paper() {
    let bar = AccuracyBar { min_top1: 0.995, max_mean_abs_error: 2e-3 };
    for dataset in Dataset::ALL {
        let trace = ScoreTrace::generate(dataset, 96, 64, 0x0E4 + dataset as u64);
        let points = sweep_formats(&trace.rows, 3..=6, 0..=4).expect("sweep");
        let best = minimal_format(&points, bar).expect("some format passes");
        assert_eq!(
            best.format,
            dataset.paper_format(),
            "{dataset}: got {} expected {}",
            best.format,
            dataset.paper_format()
        );
    }
}

#[test]
fn e5_geometry_facts() {
    let engine = StarSoftmax::new(StarSoftmaxConfig::new(QFormat::MRPC)).expect("engine");
    let g = engine.geometry();
    assert_eq!((g.cam_sub.rows(), g.cam_sub.cols()), (512, 18));
    assert_eq!((g.exp_cam.rows(), g.exp_cam.cols()), (256, 16));
    assert_eq!((g.lut.rows(), g.lut.cols()), (256, 18));
    assert_eq!((g.vmm.rows(), g.vmm.cols()), (256, 18));
    // Sign-bit removal halves the exponential-stage rows.
    assert_eq!(g.exp_cam.rows() * 2, g.cam_sub.rows());
}

#[test]
fn a1_pipeline_contributions_positive() {
    use star::core::PipelineMode;
    let cfg = AttentionConfig::bert_base(128);
    let rt = RramAccelerator::retransformer().evaluate(&cfg);
    let engine_only =
        RramAccelerator::star_with_pipeline(PipelineMode::OperandGrained).evaluate(&cfg);
    let full = RramAccelerator::star().evaluate(&cfg);
    // Both the engine and the pipeline contribute.
    assert!(engine_only.efficiency_gops_per_watt > rt.efficiency_gops_per_watt);
    assert!(full.efficiency_gops_per_watt > engine_only.efficiency_gops_per_watt);
}
